"""Run watchdogs and executor robustness.

The guards that keep one bad point from taking a sweep down: the
wall-clock watchdog and event budget convert a wedged run into a
:class:`RunAborted` carrying a partial-result snapshot; the parallel
executor turns that (or a pool timeout) into a :class:`FailedRun`
without retrying a deterministic casualty; transient crashes back off
with deterministic seeded jitter; Ctrl-C flushes completed results to
the cache before propagating; and a corrupted cache entry is a miss,
never a crash.
"""

import json
import multiprocessing
import pickle
import time

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (CACHE_VERSION, FailedRun,
                                        ResultCache, RunSpec, Task,
                                        _backoff_delays, require,
                                        run_tasks)
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.faults.watchdog import RunAborted, WallClockWatchdog
from repro.netsim.engine import Simulator

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="guarded", duration_s=2.0):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


class FakeClock:
    """An injectable monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# -- the wall-clock watchdog -------------------------------------------------

class TestWallClockWatchdog:
    def test_quiet_until_the_deadline_then_raises_with_partial(self):
        clock = FakeClock()
        watchdog = WallClockWatchdog(
            limit_s=5.0, partial=lambda: {"events": 42}, clock=clock)
        watchdog()                       # Well inside the budget.
        clock.now += 4.9
        watchdog()                       # Still inside.
        assert watchdog.remaining_s == pytest.approx(0.1)
        clock.now += 0.2
        with pytest.raises(RunAborted) as excinfo:
            watchdog()
        assert excinfo.value.partial == {"events": 42}
        assert "5" in excinfo.value.reason

    def test_reset_restarts_the_budget(self):
        clock = FakeClock()
        watchdog = WallClockWatchdog(limit_s=1.0, clock=clock)
        clock.now += 10.0
        watchdog.reset()
        watchdog()                       # Fresh budget: no raise.
        clock.now += 1.0
        with pytest.raises(RunAborted) as excinfo:
            watchdog()
        assert excinfo.value.partial is None

    def test_nonpositive_limit_rejected(self):
        with pytest.raises(ValueError):
            WallClockWatchdog(limit_s=0)


class TestRunAborted:
    def test_pickle_preserves_the_partial_payload(self):
        original = RunAborted("wedged", partial={"events": 7,
                                                 "flows": [1, 2]})
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, RunAborted)
        assert clone.reason == "wedged"
        assert clone.partial == {"events": 7, "flows": [1, 2]}
        assert str(clone) == "wedged"

    def test_is_never_retried(self):
        assert parallel._no_retry(RunAborted("wedged"))
        assert parallel._no_retry(multiprocessing.TimeoutError())
        assert not parallel._no_retry(ValueError("transient"))


# -- the engine hook ---------------------------------------------------------

class TestEngineWatchdogHook:
    @staticmethod
    def _chain(sim, count):
        """Schedule ``count`` events, each 1 ns apart."""
        remaining = [count]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1, tick)

        sim.schedule(1, tick)

    def test_called_once_per_interval(self):
        sim = Simulator()
        self._chain(sim, 10)
        calls = []
        sim.run(watchdog=lambda: calls.append(sim.now_ns),
                watchdog_interval=4)
        assert len(calls) == 2           # After events 4 and 8.

    def test_a_raising_watchdog_aborts_the_run(self):
        sim = Simulator()
        self._chain(sim, 100)

        def abort():
            raise RunAborted("enough")

        with pytest.raises(RunAborted):
            sim.run(watchdog=abort, watchdog_interval=10)
        assert sim.processed_events < 100

    def test_a_quiet_watchdog_changes_nothing(self):
        plain = Simulator()
        self._chain(plain, 50)
        plain.run()
        watched = Simulator()
        self._chain(watched, 50)
        watched.run(watchdog=lambda: None, watchdog_interval=1)
        assert watched.processed_events == plain.processed_events
        assert watched.now_ns == plain.now_ns


class TestScenarioGuards:
    def test_event_budget_aborts_with_a_partial_snapshot(self):
        with pytest.raises(RunAborted) as excinfo:
            run_scenario(tiny_scaled(), Discipline.CEBINAE,
                         max_events=2000)
        partial = excinfo.value.partial
        assert partial is not None
        assert partial["events"] <= 2000
        assert 0 <= partial["sim_time_ns"] < partial["duration_ns"]
        assert partial["delivered_bytes"]
        assert json.loads(json.dumps(partial)) == partial

    def test_wall_limit_aborts_a_long_run(self):
        # The first watchdog check (8192 events in) is already past a
        # nanosecond budget, so this aborts deterministically.
        with pytest.raises(RunAborted) as excinfo:
            run_scenario(tiny_scaled(duration_s=30.0),
                         Discipline.CEBINAE, wall_limit_s=1e-9)
        assert excinfo.value.partial["events"] > 0

    def test_generous_guards_do_not_perturb_the_run(self):
        plain = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                             collect_series=True)
        guarded = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                               collect_series=True, wall_limit_s=600.0,
                               max_events=10 ** 9)
        assert json.dumps(guarded.to_dict(), sort_keys=True) == \
            json.dumps(plain.to_dict(), sort_keys=True)


# -- the executor ------------------------------------------------------------

def _ok(value):
    return {"value": value}


def _wedged(duration_s):
    time.sleep(duration_s)
    return {"value": "never"}


def _passthrough_task(fn, label, fingerprint="", **kwargs):
    return Task(fn=fn, kwargs=kwargs, label=label,
                fingerprint=fingerprint,
                encode=lambda v: v, decode=lambda p: p)


class TestPoolTimeout:
    def test_a_wedged_task_becomes_a_failed_run_not_a_hang(self):
        tasks = [_passthrough_task(_wedged, "wedged", duration_s=60.0),
                 _passthrough_task(_ok, "fast", value=3)]
        start = time.monotonic()
        results = run_tasks(tasks, workers=2, timeout_s=1.0,
                            progress=None)
        elapsed = time.monotonic() - start
        assert elapsed < 30.0            # The pool did not wait 60 s.
        failed = results[0]
        assert isinstance(failed, FailedRun)
        assert failed.timed_out
        assert failed.attempts == 1      # Deterministic: never retried.
        assert failed.backoff_s == []
        assert results[1] == {"value": 3}

    def test_run_aborted_carries_partial_into_failed_run(self):
        def wedge():
            raise RunAborted("watchdog fired", partial={"events": 9})

        results = run_tasks([_passthrough_task(wedge, "aborted")],
                            workers=1, progress=None)
        failed = results[0]
        assert isinstance(failed, FailedRun)
        assert failed.timed_out
        assert failed.attempts == 1
        assert failed.partial == {"events": 9}
        assert "watchdog fired" in failed.error


class TestFailedRunSerialisation:
    def test_round_trips_through_json(self):
        failed = FailedRun(label="p1", error="boom", attempts=3,
                           timed_out=True, backoff_s=[0.05, 0.11],
                           partial={"events": 12})
        payload = json.loads(json.dumps(failed.to_dict()))
        assert FailedRun.from_dict(payload) == failed

    def test_legacy_payload_defaults(self):
        # Entries written before the watchdog fields existed.
        failed = FailedRun.from_dict(
            {"label": "p", "error": "x", "attempts": 2})
        assert not failed.timed_out
        assert failed.backoff_s == []
        assert failed.partial is None

    def test_require_unwraps_or_raises(self):
        assert require({"value": 1}) == {"value": 1}
        with pytest.raises(RuntimeError, match="p1"):
            require(FailedRun(label="p1", error="boom", attempts=1))


class TestBackoff:
    def test_delays_are_deterministic_and_exponential(self):
        delays = _backoff_delays("some-key", retries=4, base_s=0.05)
        assert delays == _backoff_delays("some-key", 4, 0.05)
        assert delays != _backoff_delays("other-key", 4, 0.05)
        for attempt, delay in enumerate(delays):
            floor = 0.05 * (2 ** attempt)
            assert floor <= delay <= floor * 1.5

    def test_retry_sleeps_exactly_the_recorded_delays(self, monkeypatch):
        slept = []
        monkeypatch.setattr(parallel, "_sleep", slept.append)

        def boom():
            raise ValueError("always")

        results = run_tasks([_passthrough_task(boom, "boom")],
                            workers=1, retries=2, progress=None)
        failed = results[0]
        assert isinstance(failed, FailedRun)
        assert failed.attempts == 3
        assert slept == failed.backoff_s == \
            _backoff_delays("boom", 2, 0.05)

    def test_transient_failure_backs_off_once_then_succeeds(
            self, monkeypatch):
        slept = []
        monkeypatch.setattr(parallel, "_sleep", slept.append)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("transient")
            return {"value": 5}

        results = run_tasks([_passthrough_task(flaky, "flaky")],
                            workers=1, progress=None)
        assert results == [{"value": 5}]
        assert slept == _backoff_delays("flaky", 1, 0.05)


def _interrupt():
    raise KeyboardInterrupt


class TestKeyboardInterrupt:
    def test_completed_results_are_flushed_before_reraising(
            self, tmp_path):
        messages = []
        tasks = [_passthrough_task(_ok, "first", fingerprint="fp-first",
                                   value=1),
                 _passthrough_task(_interrupt, "ctrl-c",
                                   fingerprint="fp-ctrl-c")]
        with pytest.raises(KeyboardInterrupt):
            run_tasks(tasks, workers=1, cache_dir=tmp_path,
                      progress=messages.append)
        assert any("flushed 1 completed" in message
                   for message in messages)
        # A rerun replays the flushed task from cache without calling it.
        def must_not_run(value):
            raise AssertionError("should have been cached")

        rerun = run_tasks(
            [_passthrough_task(must_not_run, "first",
                               fingerprint="fp-first", value=1)],
            workers=1, cache_dir=tmp_path, progress=None)
        assert rerun == [{"value": 1}]


class TestCorruptedCache:
    def test_round_trip_counts_a_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("fp", "result", "label", {"value": 1})
        assert cache.load("fp") == {"value": 1}
        assert (cache.hits, cache.misses) == (1, 0)

    @pytest.mark.parametrize("content", [
        "",                                        # Truncated to nothing.
        "{\"cache_version\": 1, \"payl",           # Torn mid-write.
        "[1, 2, 3]",                               # Wrong JSON shape.
        "42",                                      # Not even an object.
        json.dumps({"cache_version": CACHE_VERSION}),   # No payload.
        json.dumps({"cache_version": CACHE_VERSION - 1,
                    "payload": {"value": 1}}),     # Foreign schema.
    ])
    def test_bad_entries_are_misses_not_errors(self, tmp_path, content):
        cache = ResultCache(tmp_path)
        (tmp_path / "fp.json").write_text(content, encoding="utf-8")
        assert cache.load("fp") is None
        assert cache.misses == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("absent") is None
        assert cache.misses == 1

    def test_a_corrupted_entry_is_resimulated_and_overwritten(
            self, tmp_path):
        task = _passthrough_task(_ok, "point", fingerprint="fp-point",
                                 value=7)
        (tmp_path / "fp-point.json").write_text("{torn",
                                                encoding="utf-8")
        results = run_tasks([task], workers=1, cache_dir=tmp_path,
                            progress=None)
        assert results == [{"value": 7}]
        entry = json.loads((tmp_path / "fp-point.json").read_text())
        assert entry["payload"] == {"value": 7}


class TestRunSpecGuards:
    def test_guards_flow_into_the_scenario_task(self):
        spec = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                       wall_limit_s=2.5, max_events=1000)
        task = parallel._scenario_task(spec)
        assert task.kwargs["wall_limit_s"] == 2.5
        assert task.kwargs["max_events"] == 1000
        plain = parallel._scenario_task(
            RunSpec(tiny_scaled(), Discipline.CEBINAE))
        assert "wall_limit_s" not in plain.kwargs
        assert "max_events" not in plain.kwargs

    def test_event_budget_surfaces_as_failed_run_via_run_many(self):
        spec = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                       max_events=2000)
        results = parallel.run_many([spec], workers=1, progress=None)
        failed = results[0]
        assert isinstance(failed, FailedRun)
        assert failed.timed_out
        assert failed.partial is not None
        assert failed.partial["events"] <= 2000
