"""Tests for the base queue disc and drop-tail FIFO."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.packet import MTU_BYTES, FlowId, Packet
from repro.netsim.queues import DropTailQueue


def make_packet(size=1500, port=1):
    return Packet(flow=FlowId(1, 2, port, 80), size_bytes=size)


class TestDropTailBasics:
    def test_fifo_order(self):
        queue = DropTailQueue(limit_packets=10)
        packets = [make_packet(port=i) for i in range(5)]
        for packet in packets:
            assert queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(5)] == packets

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_len_and_byte_length(self):
        queue = DropTailQueue(limit_packets=10)
        queue.enqueue(make_packet(size=1000))
        queue.enqueue(make_packet(size=500))
        assert len(queue) == 2
        assert queue.byte_length == 1500
        queue.dequeue()
        assert len(queue) == 1
        assert queue.byte_length == 500


class TestLimits:
    def test_packet_limit_drops_tail(self):
        queue = DropTailQueue(limit_packets=2)
        assert queue.enqueue(make_packet(port=1))
        assert queue.enqueue(make_packet(port=2))
        assert not queue.enqueue(make_packet(port=3))
        assert queue.dropped_packets == 1
        assert len(queue) == 2

    def test_byte_limit_drops_tail(self):
        queue = DropTailQueue(limit_bytes=2000)
        assert queue.enqueue(make_packet(size=1500))
        assert not queue.enqueue(make_packet(size=1500))
        assert queue.enqueue(make_packet(size=500))
        assert queue.dropped_bytes == 1500

    def test_from_mtu_count(self):
        queue = DropTailQueue.from_mtu_count(3)
        for _ in range(3):
            assert queue.enqueue(make_packet(size=MTU_BYTES))
        assert not queue.enqueue(make_packet(size=1))

    def test_stricter_limit_applies(self):
        queue = DropTailQueue(limit_packets=100, limit_bytes=1500)
        assert queue.enqueue(make_packet(size=1500))
        assert not queue.enqueue(make_packet(size=64))

    def test_default_limit_exists(self):
        queue = DropTailQueue()
        assert queue.limit_packets == 100


class TestWaker:
    def test_waker_called_on_first_enqueue(self):
        queue = DropTailQueue(limit_packets=10)
        calls = []
        queue.set_waker(lambda: calls.append(len(queue)))
        queue.enqueue(make_packet())
        queue.enqueue(make_packet())
        assert calls == [1]  # Only the empty->nonempty transition.

    def test_waker_after_drain(self):
        queue = DropTailQueue(limit_packets=10)
        calls = []
        queue.set_waker(lambda: calls.append("wake"))
        queue.enqueue(make_packet())
        queue.dequeue()
        queue.enqueue(make_packet())
        assert calls == ["wake", "wake"]

    def test_dropped_packet_does_not_wake(self):
        queue = DropTailQueue(limit_packets=1)
        queue.enqueue(make_packet())
        calls = []
        queue.set_waker(lambda: calls.append("wake"))
        queue.enqueue(make_packet())
        assert calls == []


class TestConservationProperty:
    @given(st.lists(st.integers(min_value=64, max_value=9000),
                    min_size=1, max_size=100))
    def test_bytes_conserved(self, sizes):
        queue = DropTailQueue(limit_bytes=20_000)
        accepted = 0
        for size in sizes:
            if queue.enqueue(make_packet(size=size)):
                accepted += size
        drained = 0
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            drained += packet.size_bytes
        assert drained == accepted
        assert queue.dropped_bytes == sum(sizes) - accepted
