"""Runtime invariant checkers and their wiring into the engine."""

import pytest

from repro.analysis import (InvariantViolation, require, require_int_ns,
                            unwrap)
from repro.netsim.engine import Simulator


# -- the helpers themselves ----------------------------------------------------

def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(InvariantViolation, match="broke"):
        require(False, "broke")


def test_invariant_violation_is_an_assertion_error():
    assert issubclass(InvariantViolation, AssertionError)


def test_unwrap_returns_value():
    assert unwrap(5) == 5
    assert unwrap("x", "missing") == "x"
    assert unwrap(0) == 0  # Falsy but not None.


def test_unwrap_raises_on_none():
    with pytest.raises(InvariantViolation, match="no rng"):
        unwrap(None, "no rng")


def test_require_int_ns_accepts_ints():
    assert require_int_ns(0, "delay") == 0
    assert require_int_ns(10**12, "delay") == 10**12


def test_require_int_ns_rejects_float():
    with pytest.raises(InvariantViolation, match="delay_ns"):
        require_int_ns(1.5, "delay_ns")


def test_require_int_ns_rejects_whole_float():
    # Even a representable whole float is rejected: upstream arithmetic
    # that produced it will eventually produce 1333333.3333.
    with pytest.raises(InvariantViolation):
        require_int_ns(1000.0, "delay_ns")


def test_require_int_ns_rejects_bool():
    with pytest.raises(InvariantViolation, match="bool"):
        require_int_ns(True, "delay_ns")


def test_require_int_ns_message_names_the_site():
    with pytest.raises(InvariantViolation, match="run.. until_ns"):
        require_int_ns(0.5, "run() until_ns")


# -- engine wiring: the integer-ns clock contract is enforced ------------------

def test_schedule_rejects_float_delay():
    sim = Simulator()
    with pytest.raises(InvariantViolation):
        sim.schedule(1.5, lambda: None)


def test_schedule_at_rejects_float_time():
    sim = Simulator()
    with pytest.raises(InvariantViolation):
        sim.schedule_at(2e9, lambda: None)


def test_run_rejects_float_until():
    sim = Simulator()
    with pytest.raises(InvariantViolation):
        sim.run(until_ns=0.5)


def test_schedule_rejects_bool_delay():
    sim = Simulator()
    with pytest.raises(InvariantViolation):
        sim.schedule(True, lambda: None)


def test_integer_schedule_still_works():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(sim.now_ns))
    sim.schedule_at(10, lambda: fired.append(sim.now_ns))
    sim.run(until_ns=20)
    assert fired == [5, 10]
    assert sim.now_ns == 20
