"""The flow-sensitive dimensional-unit pass (U4xx).

Per-rule must-flag cases run over the on-disk fixture package
``tests/lint_fixtures/units_pkg`` (one module per rule, annotated
callees in ``sigs.py`` for the cross-module signature index); the
must-NOT-flag cases in the same modules are asserted by checking the
exact finding set.  Inline ``lint_source`` cases cover idioms the pass
must stay silent on — the acceptance bar is zero false positives on
the real tree.
"""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.unitcheck import (collect_signatures,
                                      merge_signature_indexes)

import ast

REPO_ROOT = Path(__file__).resolve().parent.parent
UNITS_PKG = REPO_ROOT / "tests" / "lint_fixtures" / "units_pkg"


def fixture_findings(rule_prefix="U4"):
    found = lint_paths([str(UNITS_PKG)])
    return [f for f in found if f.rule_id.startswith(rule_prefix)]


def by_file(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(Path(finding.path).name, []).append(finding)
    return grouped


def test_units_fixture_package_exact_finding_set():
    # One finding per must-flag case, nothing from the ok_* cases.
    grouped = by_file(fixture_findings())
    assert sorted(grouped) == ["u401.py", "u402.py", "u403.py",
                               "u404.py"]
    assert [f.rule_id for f in grouped["u401.py"]] == ["U401", "U401"]
    assert [f.rule_id for f in grouped["u402.py"]] == ["U402", "U402"]
    assert [f.rule_id for f in grouped["u403.py"]] == ["U403"]
    assert [f.rule_id for f in grouped["u404.py"]] == ["U404"]


def test_u401_messages_name_both_dimensions():
    grouped = by_file(fixture_findings())
    for finding in grouped["u401.py"]:
        assert "ns" in finding.message and "s" in finding.message


def test_u402_cross_module_call_site_uses_signature_index():
    # The second u402 finding is the call hold_for(wait): the callee
    # lives in sigs.py and is annotated TimeNs, so the check only
    # fires if the project-wide signature index resolved the relative
    # from-import.
    grouped = by_file(fixture_findings())
    call_site = grouped["u402.py"][1]
    assert "hold_for" in call_site.message
    assert "duration_ns" in call_site.message


def test_u404_names_the_contamination_line():
    grouped = by_file(fixture_findings())
    assert "float since line" in grouped["u404.py"][0].message


# -- inline must-not-flag idioms ---------------------------------------

def u4xx(source):
    found = lint_source(textwrap.dedent(source), path="fixture.py")
    return [f for f in found if f.rule_id.startswith("U4")]


def test_scale_constants_launder_dimensions():
    assert not u4xx("""
        SECOND = 1_000_000_000

        def convert(timeout_s):
            timeout_ns = int(timeout_s * SECOND)
            return timeout_ns
    """)


def test_serialization_idiom_is_clean():
    # The Link hot-path expression: bytes * 8 -> bits, * SECOND
    # launders, / rate_bps; no rule may fire.
    assert not u4xx("""
        SECOND = 1_000_000_000

        def delay_ns(size_bytes, rate_bps):
            return int(size_bytes * 8 * SECOND / rate_bps)
    """)


def test_int_wrapping_strips_float_contamination():
    assert not u4xx("""
        def half(interval_ns):
            scaled = int(interval_ns * 1.5)
            next_ns = scaled
            return next_ns
    """)


def test_branches_join_conservatively():
    # The dimension is only trusted when every branch agrees.
    assert not u4xx("""
        def pick(flag, a_ns, b_s):
            if flag:
                value = a_ns
            else:
                value = b_s
            out_ns = value
            return out_ns
    """)


def test_annotations_win_over_suffixless_names():
    found = lint_source(textwrap.dedent("""
        from repro.core.units import Seconds, TimeNs


        def stretch(pause: Seconds) -> None:
            deadline_ns = pause
    """), path="fixture.py")
    assert [f.rule_id for f in found if f.rule_id.startswith("U4")] \
        == ["U402"]


def test_ratio_scaling_preserves_dimension():
    assert not u4xx("""
        def shrink(window_bytes, tau):
            return int(window_bytes * tau)
    """)


# -- the signature index ------------------------------------------------

def collect(source, module):
    return collect_signatures(ast.parse(textwrap.dedent(source)),
                              module)


def test_collect_signatures_reads_annotations_and_suffixes():
    index = collect("""
        def wait(delay_ns, budget: "Seconds"):
            pass

        class Engine:
            def arm(self, timeout_ns):
                pass
    """, "mod")
    assert index["mod.wait"].param_dims == ("ns", "s")
    assert index["mod.Engine.arm"].param_dims == ("ns",)
    # Bare-name keys exist for unambiguous resolution.
    assert index["wait"].param_dims == ("ns", "s")


def test_merge_drops_ambiguous_short_keys():
    first = collect("def f(delay_ns):\n    pass\n", "a")
    second = collect("def f(budget_s):\n    pass\n", "b")
    merged = merge_signature_indexes([first, second])
    assert "f" not in merged           # conflicting bare name dropped
    assert merged["a.f"].param_dims == ("ns",)
    assert merged["b.f"].param_dims == ("s",)


def test_merge_keeps_identical_short_keys():
    first = collect("def f(delay_ns):\n    pass\n", "a")
    second = collect("def f(other_ns):\n    pass\n", "b")
    merged = merge_signature_indexes([first, second])
    assert merged["f"].param_dims == ("ns",)
