"""Tests for water-filling max-min allocation and fairness metrics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fairness.maxmin import (FlowSpec, is_maxmin_fair,
                                   verify_maxmin, water_filling)
from repro.fairness.metrics import (jain_fairness_index, jfi_time_series,
                                    normalized_jfi)


class TestWaterFillingBasics:
    def test_single_link_equal_split(self):
        flows = [FlowSpec(i, ("l1",)) for i in range(4)]
        allocation = water_filling({"l1": 100.0}, flows)
        for i in range(4):
            assert allocation[i] == pytest.approx(25.0)

    def test_demand_limited_flow_releases_capacity(self):
        flows = [FlowSpec("small", ("l1",), demand=10.0),
                 FlowSpec("big", ("l1",))]
        allocation = water_filling({"l1": 100.0}, flows)
        assert allocation["small"] == pytest.approx(10.0)
        assert allocation["big"] == pytest.approx(90.0)

    def test_all_demands_satisfiable(self):
        flows = [FlowSpec("a", ("l1",), demand=10.0),
                 FlowSpec("b", ("l1",), demand=20.0)]
        allocation = water_filling({"l1": 100.0}, flows)
        assert allocation["a"] == pytest.approx(10.0)
        assert allocation["b"] == pytest.approx(20.0)

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            water_filling({"l1": 1.0}, [FlowSpec("a", ("nope",))])

    def test_duplicate_flow_ids_rejected(self):
        with pytest.raises(ValueError):
            water_filling({"l1": 1.0}, [FlowSpec("a", ("l1",)),
                                        FlowSpec("a", ("l1",))])

    def test_infinite_unconstrained_rejected(self):
        with pytest.raises(ValueError):
            water_filling({"l1": math.inf},
                          [FlowSpec("a", ("l1",))])


class TestPaperExamples:
    def test_figure2a_fair_shares(self):
        """Figure 2a: five flows on a single bottleneck should each get
        a fifth regardless of aggressiveness."""
        flows = [FlowSpec(chr(ord("A") + i), ("l",)) for i in range(5)]
        allocation = water_filling({"l": 10.0}, flows)
        for flow in flows:
            assert allocation[flow.flow_id] == pytest.approx(2.0)

    def test_figure2b_multi_bottleneck(self):
        """Figure 2b: A spans l1/l3, B spans l1/l2(10), C spans l2/l5(2).

        Max-min: C is bottlenecked by l5 at 2; B by l2 at 10-2=8; A by
        l1 at 20-8=12 (l3 has 20).
        """
        capacities = {"l1": 20.0, "l2": 10.0, "l3": 20.0, "l4": 20.0,
                      "l5": 2.0}
        flows = [FlowSpec("A", ("l1", "l3")),
                 FlowSpec("B", ("l1", "l2")),
                 FlowSpec("C", ("l2", "l5"))]
        allocation = water_filling(capacities, flows)
        assert allocation["C"] == pytest.approx(2.0)
        assert allocation["B"] == pytest.approx(8.0)
        assert allocation["A"] == pytest.approx(12.0)

    def test_parking_lot_allocation(self):
        """Figure 11's topology: 8 long flows over 3 links vs 2/8/4
        cross flows."""
        capacities = {0: 100.0, 1: 100.0, 2: 100.0}
        flows = [FlowSpec(f"long{i}", (0, 1, 2)) for i in range(8)]
        flows += [FlowSpec(f"bic{i}", (0,)) for i in range(2)]
        flows += [FlowSpec(f"vegas{i}", (1,)) for i in range(8)]
        flows += [FlowSpec(f"cubic{i}", (2,)) for i in range(4)]
        allocation = water_filling(capacities, flows)
        # Link 1 carries 16 flows: the tightest constraint.
        assert allocation["long0"] == pytest.approx(100 / 16)
        assert allocation["vegas0"] == pytest.approx(100 / 16)
        # Bic flows split what the long flows leave on link 0.
        assert allocation["bic0"] == pytest.approx(
            (100 - 8 * 100 / 16) / 2)
        assert allocation["cubic0"] == pytest.approx(
            (100 - 8 * 100 / 16) / 4)


class TestDefinitionTwo:
    def test_maxmin_allocation_verifies(self):
        capacities = {"l1": 20.0, "l2": 10.0, "l5": 2.0}
        flows = [FlowSpec("A", ("l1",)), FlowSpec("B", ("l1", "l2")),
                 FlowSpec("C", ("l2", "l5"))]
        allocation = water_filling(capacities, flows)
        assert is_maxmin_fair(capacities, flows, allocation)

    def test_unfair_allocation_fails_verification(self):
        capacities = {"l1": 10.0}
        flows = [FlowSpec("a", ("l1",)), FlowSpec("b", ("l1",))]
        unfair = {"a": 8.0, "b": 1.0}
        # Link unsaturated (9 < 10): no flow has a bottleneck.
        assert not is_maxmin_fair(capacities, flows, unfair)

    def test_saturated_but_not_maximal_fails(self):
        capacities = {"l1": 10.0}
        flows = [FlowSpec("a", ("l1",)), FlowSpec("b", ("l1",))]
        unfair = {"a": 9.0, "b": 1.0}
        checks = {c.flow_id: c for c in
                  verify_maxmin(capacities, flows, unfair)}
        assert checks["a"].has_bottleneck      # Saturated and maximal.
        assert not checks["b"].has_bottleneck  # Saturated, not maximal.

    def test_satiated_flow_needs_no_bottleneck(self):
        capacities = {"l1": 10.0}
        flows = [FlowSpec("a", ("l1",), demand=2.0),
                 FlowSpec("b", ("l1",))]
        allocation = water_filling(capacities, flows)
        assert is_maxmin_fair(capacities, flows, allocation)


class TestWaterFillingProperties:
    @st.composite
    def random_network(draw):
        num_links = draw(st.integers(1, 5))
        capacities = {i: draw(st.floats(1.0, 100.0))
                      for i in range(num_links)}
        num_flows = draw(st.integers(1, 8))
        flows = []
        for i in range(num_flows):
            size = draw(st.integers(1, num_links))
            path = tuple(draw(st.permutations(range(num_links)))[:size])
            flows.append(FlowSpec(i, path))
        return capacities, flows

    @given(random_network())
    @settings(max_examples=80)
    def test_capacity_constraints_respected(self, network):
        capacities, flows = network
        allocation = water_filling(capacities, flows)
        load = {link: 0.0 for link in capacities}
        for flow in flows:
            assert allocation[flow.flow_id] >= 0
            for link in flow.path:
                load[link] += allocation[flow.flow_id]
        for link, used in load.items():
            assert used <= capacities[link] * (1 + 1e-6)

    @given(random_network())
    @settings(max_examples=80)
    def test_definition2_holds_for_waterfilling(self, network):
        capacities, flows = network
        allocation = water_filling(capacities, flows)
        assert is_maxmin_fair(capacities, flows, allocation,
                              tolerance=1e-5)


class TestJfi:
    def test_equal_rates_give_one(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_gives_one_over_n(self):
        assert jain_fairness_index([10.0, 0, 0, 0]) == \
            pytest.approx(0.25)

    def test_paper_ratio_example(self):
        # 80/20 split between 2 flows: (1)^2/(2*(0.64+0.04))... known
        # value (0.8+0.2)^2 / (2*(0.64+0.04)) = 1/1.36.
        assert jain_fairness_index([0.8, 0.2]) == \
            pytest.approx(1 / 1.36)

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])

    @given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=100))
    def test_bounds(self, rates):
        value = jain_fairness_index(rates)
        assert 1 / len(rates) - 1e-9 <= value <= 1.0 + 1e-9

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=50),
           st.floats(0.1, 10.0))
    def test_scale_invariance(self, rates, scale):
        original = jain_fairness_index(rates)
        scaled = jain_fairness_index([r * scale for r in rates])
        assert scaled == pytest.approx(original, rel=1e-6)


class TestNormalizedJfi:
    def test_ideal_allocation_scores_one(self):
        ideal = {"a": 10.0, "b": 2.0}
        assert normalized_jfi(dict(ideal), ideal) == pytest.approx(1.0)

    def test_uniform_allocation_penalised_under_skewed_ideal(self):
        ideal = {"a": 10.0, "b": 2.0}
        uniform = {"a": 6.0, "b": 6.0}
        assert normalized_jfi(uniform, ideal) < 1.0

    def test_mismatched_flows_rejected(self):
        with pytest.raises(ValueError):
            normalized_jfi({"a": 1.0}, {"b": 1.0})

    def test_nonpositive_ideal_rejected(self):
        with pytest.raises(ValueError):
            normalized_jfi({"a": 1.0}, {"a": 0.0})


class TestJfiTimeSeries:
    def test_series_shape(self):
        series = jfi_time_series({"a": [1.0, 1.0], "b": [1.0, 3.0]})
        assert len(series) == 2
        assert series[0] == pytest.approx(1.0)
        assert series[1] < 1.0

    def test_flows_excluded_before_join(self):
        series = jfi_time_series({"a": [1.0, 1.0], "b": [0.0, 1.0]},
                                 active_from_bin={"a": 0, "b": 1})
        assert series[0] == pytest.approx(1.0)  # Only flow a counted.
        assert series[1] == pytest.approx(1.0)

    def test_empty_input(self):
        assert jfi_time_series({}) == []
