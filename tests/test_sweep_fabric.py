"""The crash-resumable sweep fabric: manifests, leases, workers, CLIs.

Covers the fabric contract piece by piece: manifest round-trips
rebuild the exact tasks (and fingerprints) from JSON alone, the lease
protocol hands each shard to exactly one live worker and recycles
leases whose owner stalled or died, the worker streams results /
retries transients / quarantines poison tasks, and the ``sweep`` and
``cache gc`` CLIs report state computed from the directory alone.
The end-to-end kill -9 drills live in ``test_sweep_resume.py``.
"""

import json
import os
import signal

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.parallel import (FailedRun, ResultCache, RunSpec,
                                        Task, TerminateSweep, run_tasks)
from repro.experiments.runner import Discipline
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.sweep.lease import LeaseStore
from repro.sweep.manifest import (ManifestError, SweepDir, SweepManifest,
                                  manifest_from_callables,
                                  manifest_from_runs)
from repro.sweep.worker import SweepWorker, WorkerConfig

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="sweep", duration_s=2.0):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


def callable_manifest(name="demo", count=4, shard_size=1, rounds=5):
    return manifest_from_callables(name, [
        {"label": f"task-{i}",
         "fn": "repro.sweep.tasks:checksum",
         "kwargs": {"label": f"task-{i}", "seed": i, "rounds": rounds}}
        for i in range(count)], shard_size=shard_size)


class TestRunSpecRoundTrip:
    def test_runspec_rebuilds_identical_fingerprint(self):
        spec = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                       record_history=True, collect_series=True)
        rebuilt = RunSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.fingerprint() == spec.fingerprint()
        assert rebuilt.to_dict() == spec.to_dict()

    def test_scaled_scenario_round_trip(self):
        scaled = tiny_scaled()
        rebuilt = type(scaled).from_dict(
            json.loads(json.dumps(scaled.to_dict())))
        assert rebuilt == scaled


class TestManifest:
    def test_round_trip_and_shards(self):
        manifest = callable_manifest(count=5, shard_size=2)
        rebuilt = SweepManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict())))
        assert [t.to_dict() for t in rebuilt.tasks] == \
            [t.to_dict() for t in manifest.tasks]
        shards = rebuilt.shards()
        assert sorted(shards) == [0, 1, 2]
        assert [len(v) for _, v in sorted(shards.items())] == [2, 2, 1]

    def test_callable_task_rebuilds_and_runs(self):
        manifest = callable_manifest(count=1)
        task = manifest.tasks[0].task()
        value = task.fn(**task.kwargs)
        assert value["label"] == "task-0"
        assert len(value["digest"]) == 64

    def test_runspec_manifest_preserves_fingerprints(self):
        runs = [RunSpec(tiny_scaled(), Discipline.FIFO),
                RunSpec(tiny_scaled(), Discipline.CEBINAE)]

        class _Run:
            def __init__(self, runspec):
                self.runspec = runspec
                self.label = runspec.label

            def fingerprint(self):
                return self.runspec.fingerprint()

        manifest = manifest_from_runs("fp", [_Run(r) for r in runs])
        for entry, spec in zip(manifest.tasks, runs):
            assert entry.fingerprint == spec.fingerprint()
            rebuilt = entry.task()
            assert rebuilt.fingerprint == spec.fingerprint()

    def test_wrong_version_refused(self):
        data = callable_manifest().to_dict()
        data["manifest_version"] = 99
        with pytest.raises(ManifestError, match="manifest_version"):
            SweepManifest.from_dict(data)
        data = callable_manifest().to_dict()
        data["cache_version"] = 99
        with pytest.raises(ManifestError, match="cache_version"):
            SweepManifest.from_dict(data)

    def test_label_collision_refused(self):
        data = callable_manifest(count=2).to_dict()
        data["tasks"][1]["label"] = data["tasks"][0]["label"]
        with pytest.raises(ManifestError, match="collide"):
            SweepManifest.from_dict(data)

    def test_reinit_refuses_differing_manifest(self, tmp_path):
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(callable_manifest(count=2))
        sweep.initialise(callable_manifest(count=2))   # Same: fine.
        with pytest.raises(ManifestError, match="--force"):
            sweep.initialise(callable_manifest(count=3))
        sweep.initialise(callable_manifest(count=3), force=True)
        assert len(sweep.load_manifest().tasks) == 3


class TestLeaseStore:
    def test_claim_conflict_release(self, tmp_path):
        store = LeaseStore(tmp_path, expiry_s=30.0)
        lease = store.claim("shard-00000", "alice")
        assert lease is not None
        assert store.claim("shard-00000", "bob") is None
        assert store.claim("shard-00001", "bob") is not None
        store.release(lease)
        assert store.claim("shard-00000", "bob") is not None

    def test_renew_bumps_heartbeat_and_detects_loss(self, tmp_path):
        now = [1000.0]
        store = LeaseStore(tmp_path, expiry_s=10.0, clock=lambda: now[0])
        lease = store.claim("shard-00000", "alice")
        now[0] += 5.0
        assert store.renew(lease)
        assert store.read("shard-00000")["renewed_unix"] == 1005.0
        # Steal out from under alice: her next renewal must fail.
        os.unlink(lease.path)
        thief = store.claim("shard-00000", "bob")
        assert thief is not None
        assert not store.renew(lease)
        # And her release must not drop bob's lease.
        store.release(lease)
        assert store.read("shard-00000")["worker_id"] == "bob"

    def test_stale_heartbeat_is_stealable(self, tmp_path):
        now = [1000.0]
        store = LeaseStore(tmp_path, expiry_s=10.0, clock=lambda: now[0])
        first = store.claim("shard-00000", "alice")
        assert first is not None
        now[0] += 10.5
        stolen = store.claim("shard-00000", "bob")
        assert stolen is not None
        assert store.expired_claims == 1
        assert store.read("shard-00000")["worker_id"] == "bob"

    def test_dead_pid_fast_path(self, tmp_path):
        store = LeaseStore(tmp_path, expiry_s=3600.0)
        lease = store.claim("shard-00000", "ghost")
        record = store.read("shard-00000")
        # Rewrite the lease as if a since-killed pid owned it.  Find a
        # free pid by probing; pid 2**22 is above kernel defaults.
        record["pid"] = 2 ** 22 - 1
        with open(lease.path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert store.is_expired(record)
        assert store.claim("shard-00000", "bob") is not None

    def test_break_expired(self, tmp_path):
        now = [1000.0]
        store = LeaseStore(tmp_path, expiry_s=10.0, clock=lambda: now[0])
        store.claim("shard-00000", "alice")
        store.claim("shard-00001", "alice")
        assert store.break_expired() == 0
        now[0] += 11.0
        assert store.break_expired() == 2
        assert store.active() == []


class TestWorker:
    def run_worker(self, sweep, **config):
        config.setdefault("worker_id", "test-w0")
        config.setdefault("install_signal_handlers", False)
        config.setdefault("heartbeat", False)
        worker = SweepWorker(sweep, WorkerConfig(**config))
        return worker.run()

    def test_completes_manifest_and_streams_results(self, tmp_path):
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(callable_manifest(count=4, shard_size=2))
        report = self.run_worker(sweep)
        assert report.completed == 4
        assert report.quarantined == 0
        cache = sweep.cache()
        for task in sweep.load_manifest().tasks:
            payload = cache.load(task.fingerprint)
            assert payload["label"] == task.label
        # Leases all released; metrics snapshot written.
        assert list(sweep.lease_dir.glob("*.lease")) == []
        assert (sweep.metrics_dir / "test-w0.json").exists()

    def test_rerun_is_idempotent(self, tmp_path):
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(callable_manifest(count=3))
        assert self.run_worker(sweep).completed == 3
        before = {p.name: p.read_bytes()
                  for p in sweep.cache_dir.glob("*.json")}
        again = self.run_worker(sweep, worker_id="test-w1")
        assert again.completed == 0
        after = {p.name: p.read_bytes()
                 for p in sweep.cache_dir.glob("*.json")}
        assert after == before

    def test_max_tasks_parks_midway(self, tmp_path):
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(callable_manifest(count=4))
        assert self.run_worker(sweep, max_tasks=2).completed == 2
        assert sweep.status()["counts"]["done"] == 2
        assert self.run_worker(sweep, worker_id="w2").completed == 2
        assert sweep.status()["counts"]["pending"] == 0

    def test_quarantines_poison_task_and_keeps_going(self, tmp_path):
        manifest = manifest_from_callables("poison", [
            {"label": "bad", "fn": "repro.sweep.tasks:always_fails",
             "kwargs": {"label": "bad"}},
            {"label": "good", "fn": "repro.sweep.tasks:checksum",
             "kwargs": {"label": "good", "seed": 1, "rounds": 5}}])
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(manifest)
        report = self.run_worker(sweep, retries=1,
                                 backoff_base_s=0.001)
        assert report.completed == 1
        assert report.quarantined == 1
        record = sweep.quarantined()
        (fingerprint,) = record
        assert record[fingerprint]["label"] == "bad"
        failed = FailedRun.from_dict(record[fingerprint]["failed"])
        assert failed.attempts == 2
        assert len(failed.backoff_s) == 1
        # A later worker skips the quarantined task instead of
        # re-poisoning itself.
        assert self.run_worker(sweep, worker_id="w2").completed == 0
        counts = sweep.status()["counts"]
        assert counts == {"done": 1, "quarantined": 1, "leased": 0,
                          "pending": 0}

    def test_transient_failure_heals_via_retry(self, tmp_path):
        counter = tmp_path / "attempts"
        manifest = manifest_from_callables("flaky", [
            {"label": "flaky", "fn": "repro.sweep.tasks:flaky",
             "kwargs": {"label": "flaky", "counter": str(counter),
                        "fail_first": 1}}])
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(manifest)
        report = self.run_worker(sweep, retries=2,
                                 backoff_base_s=0.001)
        assert report.completed == 1
        assert report.quarantined == 0
        assert counter.read_text() == "2"

    def test_sigterm_releases_lease_and_keeps_results(self, tmp_path):
        marker = tmp_path / "first-done"
        manifest = manifest_from_callables("term", [
            {"label": "ok", "fn": "repro.sweep.tasks:checksum",
             "kwargs": {"label": "ok", "seed": 0, "rounds": 5}},
            {"label": "boom", "fn": "tests.test_sweep_fabric:_self_term",
             "kwargs": {"marker": str(marker)}}])
        sweep = SweepDir(tmp_path / "s")
        sweep.initialise(manifest)
        worker = SweepWorker(sweep, WorkerConfig(
            worker_id="term-w0", heartbeat=False,
            install_signal_handlers=True))
        report = worker.run()
        assert report.interrupted
        assert report.completed == 1
        counts = sweep.status()["counts"]
        assert counts["done"] == 1 and counts["leased"] == 0
        # The handler was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) is not \
            worker._raise_shutdown


def _self_term(marker):
    """Sweep task that SIGTERMs its own worker process."""
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write("here")
    os.kill(os.getpid(), signal.SIGTERM)
    # The signal is delivered at a bytecode boundary; force one.
    import time
    time.sleep(1.0)  # simlint: allow[D103] waiting for own SIGTERM
    raise AssertionError("SIGTERM was not delivered")


def _noop():
    return {"ok": True}


def _raise_value_error():
    raise ValueError("deterministic boom")


class TestRunTasksSigterm:
    """Satellite: ``run_tasks`` flushes on SIGTERM like it does on ^C."""

    def make_tasks(self, tmp_path, labels):
        def ok(label):
            return {"label": label}
        tasks = []
        for label in labels:
            fn = ok if label != "boom" else \
                (lambda label: _self_term(str(tmp_path / "marker")))
            tasks.append(Task(
                fn=fn, kwargs={"label": label}, label=label,
                fingerprint=parallel.fingerprint(
                    "demo", {"label": label}),
                kind="demo", encode=lambda v: v, decode=lambda v: v))
        return tasks

    def test_sigterm_flushes_completed_results(self, tmp_path):
        tasks = self.make_tasks(tmp_path, ["a", "b", "boom"])
        with pytest.raises(TerminateSweep):
            run_tasks(tasks, workers=1, cache_dir=tmp_path / "cache")
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(tasks[0].fingerprint) == {"label": "a"}
        assert cache.load(tasks[1].fingerprint) == {"label": "b"}
        assert cache.load(tasks[2].fingerprint) is None
        # The previous SIGTERM disposition came back.
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL

    def test_backoff_records_actual_sleep_on_interrupt(self, tmp_path,
                                                       monkeypatch):
        """Satellite: interrupted backoff logs slept time, not the plan."""
        def explode(*args, **kwargs):
            raise KeyboardInterrupt()
        monkeypatch.setattr(parallel, "_sleep", explode)
        task = Task(fn=_raise_value_error, kwargs={}, label="fail",
                    fingerprint="", kind="demo",
                    encode=lambda v: v, decode=lambda v: v)
        with pytest.raises(KeyboardInterrupt) as excinfo:
            run_tasks([task], workers=1, retries=2,
                      backoff_base_s=10.0)
        failed = excinfo.value.failed_run
        assert failed.interrupted
        assert failed.attempts == 1
        # The planned delay was ~10s+; none of it was actually slept.
        assert len(failed.backoff_s) == 1
        assert failed.backoff_s[0] < 1.0
        assert "interrupted during retry backoff" in failed.error
        rebuilt = FailedRun.from_dict(
            json.loads(json.dumps(failed.to_dict())))
        assert rebuilt.interrupted


class TestCachePrune:
    def seed_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store("aaaa", "demo", "good-1", {"x": 1})
        cache.store("bbbb", "demo", "good-2", {"x": 2})
        return cache

    def test_prune_removes_corrupt_and_truncated(self, tmp_path):
        cache = self.seed_cache(tmp_path)
        root = tmp_path / "cache"
        (root / "cccc.json").write_text("{\"cache_version\": 1, tru")
        (root / "dddd.json").write_text(json.dumps(
            {"cache_version": 99, "payload": {}}))
        (root / "eeee.json.tmp").write_text("orphaned temp")
        report = cache.prune()
        assert report["kept"] == 2
        assert sorted(report["removed"]) == [
            "cccc.json", "dddd.json", "eeee.json.tmp"]
        assert report["reclaimed_bytes"] > 0
        assert cache.load("aaaa") == {"x": 1}
        assert cache.load("bbbb") == {"x": 2}
        # Idempotent: a second pass finds nothing to do.
        assert cache.prune()["removed"] == []

    def test_cache_gc_cli(self, tmp_path, capsys):
        self.seed_cache(tmp_path)
        (tmp_path / "cache" / "zzzz.json").write_text("not json")
        from repro.experiments.cli import main
        assert main(["cache", "gc", "--cache-dir",
                     str(tmp_path / "cache"), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kept"] == 2
        assert report["removed"] == ["zzzz.json"]


class TestSweepCli:
    @pytest.fixture
    def suite_dir(self, tmp_path):
        directory = tmp_path / "suite"
        directory.mkdir()
        (directory / "tiny.json").write_text(json.dumps({
            "schema_version": 1, "name": "tiny",
            "scenario": {"rate_bps": 100e6, "rtts_ms": [20, 30],
                         "buffer_mtus": 60,
                         "cca_mix": [["newreno", 1], ["newreno", 1]],
                         "duration_s": 2.0},
            "policy": {"target_rate_bps": 5e6, "max_rate_bps": 5e6},
            "disciplines": ["fifo"], "repeats": 1}))
        return directory

    def test_init_work_status_merge(self, tmp_path, suite_dir, capsys):
        from repro.sweep.cli import main
        sweep_dir = str(tmp_path / "sweep")
        assert main(["init", sweep_dir, "--suite",
                     str(suite_dir)]) == 0
        assert main(["status", sweep_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"] == {"done": 0, "quarantined": 0,
                                    "leased": 0, "pending": 1}
        # merge before completion: exit 1, the hole is reported.
        out = tmp_path / "merged.json"
        assert main(["merge", sweep_dir, "--out", str(out)]) == 1
        document = json.loads(out.read_text())
        assert document["results"][0]["status"] == "missing"
        assert main(["work", sweep_dir, "--worker-id", "cli-w0"]) == 0
        assert main(["status", sweep_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"]["done"] == 1
        assert main(["merge", sweep_dir, "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["results"][0]["status"] == "done"
        assert document["results"][0]["payload"]["discipline"] == "fifo"

    def test_resume_completes_pending(self, tmp_path, suite_dir):
        from repro.sweep.cli import main
        sweep_dir = str(tmp_path / "sweep")
        assert main(["init", sweep_dir, "--suite",
                     str(suite_dir)]) == 0
        assert main(["resume", sweep_dir, "--quiet"]) == 0
        assert SweepDir(sweep_dir).status()["counts"]["done"] == 1
        # Resume metrics got recorded.
        metrics = json.loads(
            (SweepDir(sweep_dir).metrics_dir / "resume.json")
            .read_text())
        names = {m["name"] for m in metrics["counters"]}
        assert "sweep_resumes_total" in names

    def test_watch_once_json_byte_stable(self, tmp_path, suite_dir,
                                         capsys):
        from repro.sweep.cli import main
        sweep_dir = str(tmp_path / "sweep")
        assert main(["init", sweep_dir, "--suite",
                     str(suite_dir)]) == 0
        assert main(["resume", sweep_dir, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["watch", sweep_dir, "--once", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["watch", sweep_dir, "--once", "--json"]) == 0
        second = capsys.readouterr().out
        # The canonical aggregate document: byte-stable on a finished
        # sweep (no live leases, wall clock out of the picture).
        assert first == second
        doc = json.loads(first)
        assert doc["counts"]["done"] == doc["total"] == 1
        assert doc["eta_s"] == 0.0
        assert doc["integrity"] == {"missing_results": 0,
                                    "orphan_results": 0}
        assert doc["snapshot_errors"] == []
        completed = {row["worker"]: row["completed"]
                     for row in doc["workers"]}
        assert any(count == 1 for count in completed.values())

    def test_watch_json_requires_once(self, tmp_path, suite_dir,
                                      capsys):
        from repro.sweep.cli import main
        sweep_dir = str(tmp_path / "sweep")
        assert main(["init", sweep_dir, "--suite",
                     str(suite_dir)]) == 0
        assert main(["watch", sweep_dir, "--json"]) == 2
        capsys.readouterr()

    def test_watch_text_renders_fleet(self, tmp_path, suite_dir,
                                      capsys):
        from repro.sweep.cli import main
        sweep_dir = str(tmp_path / "sweep")
        assert main(["init", sweep_dir, "--suite",
                     str(suite_dir)]) == 0
        assert main(["resume", sweep_dir, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["watch", sweep_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert "1/1 done" in out
        assert "worker" in out

    def test_status_prints_heartbeat_and_expired_leases(
            self, tmp_path, suite_dir, capsys):
        from repro.sweep.cli import main
        sweep_dir = tmp_path / "sweep"
        assert main(["init", str(sweep_dir), "--suite",
                     str(suite_dir)]) == 0
        now = [1000.0]
        store = LeaseStore(sweep_dir / "leases", expiry_s=300,
                           clock=lambda: now[0])
        assert store.claim("shard-00000", "hb-w0") is not None
        now[0] += 12.0
        status = SweepDir(sweep_dir).status(clock=lambda: now[0])
        (info,) = status["lease_info"]
        assert info["worker"] == "hb-w0"
        assert info["age_s"] == pytest.approx(12.0)
        assert info["expired"] is False
        # Past expiry the lease is flagged but still listed.
        now[0] += 400.0
        status = SweepDir(sweep_dir).status(clock=lambda: now[0])
        (info,) = status["lease_info"]
        assert info["expired"] is True
        capsys.readouterr()
        # The CLI renders the age on live shards and names expired
        # leases (its clock is real wall time: the decade-old stamp
        # is long expired).
        assert main(["status", str(sweep_dir)]) == 0
        out = capsys.readouterr().out
        assert "EXPIRED" in out
        assert "resume would reclaim it" in out

    def test_suite_fabric_flag(self, tmp_path, suite_dir, capsys):
        from repro.suite.cli import main
        fabric_dir = str(tmp_path / "fabric")
        assert main([str(suite_dir), "--fabric", "--fabric-dir",
                     fabric_dir,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "JFI=" in capsys.readouterr().out
        assert SweepDir(fabric_dir).status()["counts"]["done"] == 1

    def test_fabric_dir_requires_fabric(self, suite_dir):
        from repro.suite.cli import main
        with pytest.raises(SystemExit):
            main([str(suite_dir), "--fabric-dir", "x"])
