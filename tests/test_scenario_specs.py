"""Property tests for the declarative suite-spec format.

Two properties keep the golden harness trustworthy:

* **Round-trip** — spec → ``to_dict`` → (JSON encode/decode) →
  ``from_dict`` reproduces an *identical* spec, so a document on disk
  and its parsed form can never drift apart;
* **Fingerprint stability** — equal specs always produce equal
  fingerprints, regardless of document key order or which of the two
  equal objects computed it, and meaningful edits change it.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import Discipline
from repro.suite import ParkingLotSpec, SpecError, SuiteSpec
from repro.tcp.flows import CCA_REGISTRY

CCAS = st.sampled_from(sorted(CCA_REGISTRY))
NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)
COUNTS = st.integers(min_value=1, max_value=4)
RTTS = st.floats(min_value=1.0, max_value=400.0, allow_nan=False,
                 allow_infinity=False)
DURATIONS = st.floats(min_value=0.1, max_value=10.0, allow_nan=False,
                      allow_infinity=False)


@st.composite
def scenario_sections(draw):
    """A valid dumbbell ``scenario`` document section."""
    mix = draw(st.lists(st.tuples(CCAS, COUNTS), min_size=1,
                        max_size=3))
    groups = len(mix)
    rtts = draw(st.one_of(
        st.lists(RTTS, min_size=1, max_size=1),
        st.lists(RTTS, min_size=groups, max_size=groups)))
    total_flows = sum(count for _, count in mix)
    starts = draw(st.one_of(
        st.none(),
        st.lists(st.floats(min_value=0.0, max_value=2.0,
                           allow_nan=False),
                 min_size=total_flows, max_size=total_flows)))
    section = {
        "rate_bps": draw(st.floats(min_value=1e6, max_value=1e9,
                                   allow_nan=False)),
        "rtts_ms": [float(rtt) for rtt in rtts],
        "buffer_mtus": draw(st.integers(min_value=10, max_value=5000)),
        "cca_mix": [[cca, count] for cca, count in mix],
        "duration_s": draw(DURATIONS),
    }
    if starts is not None:
        section["start_times_s"] = [float(s) for s in starts]
    return section


@st.composite
def suite_documents(draw):
    """A valid top-level suite document (dumbbell topology)."""
    doc = {
        "schema_version": 1,
        "name": draw(NAMES),
        "scenario": draw(scenario_sections()),
        "disciplines": draw(st.lists(
            st.sampled_from([d.value for d in Discipline]),
            min_size=1, max_size=3, unique=True)),
        "collect_series": draw(st.booleans()),
        "record_history": draw(st.booleans()),
        "repeats": draw(st.integers(min_value=1, max_value=3)),
        "base_seed": draw(st.integers(min_value=0, max_value=2**31)),
    }
    if draw(st.booleans()):
        doc["description"] = draw(st.text(max_size=30))
    if draw(st.booleans()):
        doc["policy"] = {
            "target_rate_bps": draw(st.floats(min_value=1e6,
                                              max_value=1e7,
                                              allow_nan=False)),
            # Stay above the largest generated mix (3 groups x 4
            # flows) so compile() never hits the flow-scale-vs-
            # staggered-start guard; that path is pinned in
            # tests/test_scale_policy.py.
            "max_flows": draw(st.integers(min_value=12, max_value=64)),
        }
    if draw(st.booleans()):
        doc["grid"] = {"duration_s": draw(st.lists(
            DURATIONS, min_size=1, max_size=3))}
    return doc


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(doc=suite_documents())
    def test_parse_serialize_parse_is_identity(self, doc):
        spec = SuiteSpec.from_dict(doc, source="<prop>")
        wire = json.loads(json.dumps(spec.to_dict()))
        replayed = SuiteSpec.from_dict(wire, source="<prop2>")
        assert replayed == spec
        assert replayed.to_dict() == spec.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(doc=suite_documents())
    def test_equal_specs_equal_fingerprints(self, doc):
        first = SuiteSpec.from_dict(doc, source="<a>")
        # Reversed key order: the document's layout must not matter.
        reordered = dict(reversed(list(doc.items())))
        second = SuiteSpec.from_dict(reordered, source="<b>")
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    @settings(max_examples=30, deadline=None)
    @given(doc=suite_documents())
    def test_seed_edit_changes_fingerprint(self, doc):
        spec = SuiteSpec.from_dict(doc, source="<a>")
        edited = dict(doc)
        edited["base_seed"] = doc["base_seed"] + 1
        other = SuiteSpec.from_dict(edited, source="<b>")
        assert spec.fingerprint() != other.fingerprint()

    @settings(max_examples=30, deadline=None)
    @given(doc=suite_documents())
    def test_compiled_fingerprints_are_stable(self, doc):
        # Compiling twice (fresh parses) yields the same labels and
        # run fingerprints — the cache-key contract.
        first = SuiteSpec.from_dict(doc, source="<a>").compile()
        second = SuiteSpec.from_dict(dict(doc), source="<b>").compile()
        assert [(r.label, r.fingerprint()) for r in first] == \
            [(r.label, r.fingerprint()) for r in second]


class TestParkingRoundTrip:
    def test_parking_lot_round_trips(self):
        doc = {
            "name": "pl",
            "topology": "parking_lot",
            "parking_lot": {
                "rate_bps": 5e6, "buffer_mtus": 40, "num_long": 2,
                "long_cca": "newreno",
                "cross_mix": [["vegas", 2], ["cubic", 1]],
                "duration_s": 1.0, "tau": 0.06},
        }
        spec = SuiteSpec.from_dict(doc)
        assert isinstance(spec.parking, ParkingLotSpec)
        replayed = SuiteSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert replayed == spec
        assert replayed.fingerprint() == spec.fingerprint()


class TestStrictParsing:
    def base(self):
        return {
            "name": "ok",
            "scenario": {"rate_bps": 5e6, "rtts_ms": [20.0],
                         "buffer_mtus": 60,
                         "cca_mix": [["newreno", 2]],
                         "duration_s": 1.0},
        }

    def test_unknown_top_level_key_rejected(self):
        doc = self.base()
        doc["scenarios"] = {}
        with pytest.raises(SpecError, match="unknown key"):
            SuiteSpec.from_dict(doc, source="s.json")

    def test_unknown_scenario_key_rejected(self):
        doc = self.base()
        doc["scenario"]["rtt_ms"] = 20.0
        with pytest.raises(SpecError, match="scenario.*unknown key"):
            SuiteSpec.from_dict(doc, source="s.json")

    def test_error_names_source_and_path(self):
        doc = self.base()
        doc["scenario"]["duration_s"] = "long"
        with pytest.raises(SpecError,
                           match=r"s\.json: scenario\.duration_s"):
            SuiteSpec.from_dict(doc, source="s.json")

    def test_unknown_discipline_rejected(self):
        doc = self.base()
        doc["disciplines"] = ["fifo", "wfq"]
        with pytest.raises(SpecError, match="unknown discipline"):
            SuiteSpec.from_dict(doc)

    def test_unknown_cca_carries_known_list(self):
        doc = self.base()
        doc["scenario"]["cca_mix"] = [["reno", 1]]
        with pytest.raises(SpecError, match="known: bbr"):
            SuiteSpec.from_dict(doc)

    def test_future_schema_version_rejected(self):
        doc = self.base()
        doc["schema_version"] = 99
        with pytest.raises(SpecError, match="unsupported version"):
            SuiteSpec.from_dict(doc)

    def test_grid_on_parking_lot_rejected(self):
        doc = {
            "name": "pl", "topology": "parking_lot",
            "grid": {"duration_s": [1.0]},
            "parking_lot": {"rate_bps": 5e6, "buffer_mtus": 40,
                            "num_long": 1, "long_cca": "newreno",
                            "cross_mix": [["vegas", 1]],
                            "duration_s": 1.0},
        }
        with pytest.raises(SpecError, match="not allowed"):
            SuiteSpec.from_dict(doc)

    def test_bad_faults_section_is_located(self):
        doc = self.base()
        doc["faults"] = {"loss_rate": 2.0}
        with pytest.raises(SpecError, match="faults"):
            SuiteSpec.from_dict(doc)


class TestCompilation:
    def test_grid_points_and_repeats_multiply(self):
        doc = {
            "name": "grid",
            "scenario": {"rate_bps": 5e6, "rtts_ms": [20.0],
                         "buffer_mtus": 60,
                         "cca_mix": [["newreno", 1]],
                         "duration_s": 1.0},
            "grid": {"duration_s": [1.0, 2.0],
                     "buffer_mtus": [40, 60, 80]},
            "disciplines": ["fifo", "cebinae"],
            "repeats": 2,
        }
        runs = SuiteSpec.from_dict(doc).compile()
        assert len(runs) == 2 * 3 * 2 * 2
        assert len({run.label for run in runs}) == len(runs)
        assert len({run.fingerprint() for run in runs}) == len(runs)

    def test_repeat_zero_matches_plain_seed(self):
        # Repeat 0 must reuse base_seed verbatim so one-repeat suite
        # points share cache fingerprints with the figure sweeps.
        base = {
            "name": "seeds",
            "scenario": {"rate_bps": 5e6, "rtts_ms": [20.0],
                         "buffer_mtus": 60,
                         "cca_mix": [["newreno", 1]],
                         "duration_s": 1.0},
            "disciplines": ["fifo"],
            "base_seed": 7,
        }
        single = SuiteSpec.from_dict(dict(base)).compile()
        repeated = SuiteSpec.from_dict(
            dict(base, repeats=3)).compile()
        assert single[0].runspec.seed == 7
        assert repeated[0].runspec.seed == 7
        seeds = [run.runspec.seed for run in repeated]
        assert len(set(seeds)) == 3
