"""Unit tests for Vegas (delay-based) and BBRv1 (model-based)."""

import pytest

from repro.netsim.packet import MSS_BYTES
from repro.tcp.bbr import (PROBE_BW_GAINS, PROBE_RTT_CWND_SEGMENTS,
                           STARTUP_GAIN, Bbr, BbrState)
from repro.tcp.cca import AckContext, WindowedFilter
from repro.tcp.vegas import Vegas

MS = 1_000_000


def ack(cca, rtt_ns, ack_seq, snd_nxt, now_ns, acked=MSS_BYTES,
        rate_bps=None, in_flight=0):
    cca.on_ack(AckContext(acked_bytes=acked, ack_seq=ack_seq,
                          rtt_ns=rtt_ns, now_ns=now_ns,
                          in_flight_bytes=in_flight, snd_nxt=snd_nxt,
                          delivery_rate_bps=rate_bps))


class TestWindowedFilter:
    def test_max_within_window(self):
        filt = WindowedFilter(window=10, is_max=True)
        filt.update(0, 5.0)
        filt.update(1, 3.0)
        assert filt.get() == 5.0

    def test_old_samples_expire(self):
        filt = WindowedFilter(window=10, is_max=True)
        filt.update(0, 9.0)
        filt.update(11, 4.0)
        assert filt.get() == 4.0

    def test_min_filter(self):
        filt = WindowedFilter(window=10, is_max=False)
        filt.update(0, 5.0)
        filt.update(1, 2.0)
        filt.update(2, 7.0)
        assert filt.get() == 2.0

    def test_default_when_empty(self):
        assert WindowedFilter(5).get(default=42.0) == 42.0


class TestVegasEstimation:
    def test_base_rtt_is_minimum(self):
        cca = Vegas()
        ack(cca, rtt_ns=30 * MS, ack_seq=10_000, snd_nxt=20_000,
            now_ns=0)
        ack(cca, rtt_ns=25 * MS, ack_seq=30_000, snd_nxt=40_000,
            now_ns=MS)
        ack(cca, rtt_ns=35 * MS, ack_seq=50_000, snd_nxt=60_000,
            now_ns=2 * MS)
        assert cca.base_rtt_ns == 25 * MS

    def test_diff_segments_formula(self):
        cca = Vegas()
        cca.cwnd_bytes = 10 * MSS_BYTES
        cca._base_rtt_ns = 100 * MS
        cca._epoch_min_rtt_ns = 125 * MS
        # diff = cwnd * (rtt - base) / rtt = 10 * 25/125 = 2 segments.
        assert cca._diff_segments() == pytest.approx(2.0)


class TestVegasAdjustments:
    def make_in_avoidance(self, cwnd_seg=10):
        cca = Vegas()
        cca.cwnd_bytes = cwnd_seg * MSS_BYTES
        cca.ssthresh_bytes = cwnd_seg * MSS_BYTES / 2  # Not slow start.
        cca._base_rtt_ns = 100 * MS
        return cca

    def epoch(self, cca, rtt_ns):
        """Deliver one RTT epoch's worth of signal."""
        end = cca._epoch_end_seq
        ack(cca, rtt_ns=rtt_ns, ack_seq=end, snd_nxt=end + 100_000,
            now_ns=0)

    def test_grows_when_queue_below_alpha(self):
        cca = self.make_in_avoidance()
        before = cca.cwnd_bytes
        self.epoch(cca, rtt_ns=101 * MS)  # diff ~ 0.1 segment.
        assert cca.cwnd_bytes == before + MSS_BYTES

    def test_shrinks_when_queue_above_beta(self):
        cca = self.make_in_avoidance()
        before = cca.cwnd_bytes
        self.epoch(cca, rtt_ns=200 * MS)  # diff = 5 segments.
        assert cca.cwnd_bytes == before - MSS_BYTES

    def test_holds_in_sweet_spot(self):
        cca = self.make_in_avoidance()
        before = cca.cwnd_bytes
        self.epoch(cca, rtt_ns=143 * MS)  # diff ~ 3 segments.
        assert cca.cwnd_bytes == before

    def test_adjusts_once_per_epoch(self):
        cca = self.make_in_avoidance()
        before = cca.cwnd_bytes
        end = cca._epoch_end_seq
        ack(cca, rtt_ns=101 * MS, ack_seq=end, snd_nxt=end + 100_000,
            now_ns=0)
        # Acks inside the new epoch do not adjust again.
        ack(cca, rtt_ns=101 * MS, ack_seq=end + 10_000,
            snd_nxt=end + 100_000, now_ns=MS)
        assert cca.cwnd_bytes == before + MSS_BYTES

    def test_loss_halves_like_reno(self):
        cca = self.make_in_avoidance(cwnd_seg=20)
        cca.on_enter_recovery(20 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(10 * MSS_BYTES)

    def test_slow_start_exits_on_gamma(self):
        cca = Vegas()
        cca._base_rtt_ns = 100 * MS
        assert cca.in_slow_start
        end = cca._epoch_end_seq
        # Large queueing delay: diff well above gamma.
        ack(cca, rtt_ns=150 * MS, ack_seq=end, snd_nxt=end + 100_000,
            now_ns=0)
        assert not cca.in_slow_start


class TestBbrStartup:
    def test_starts_in_startup_with_high_gain(self):
        cca = Bbr()
        assert cca.state is BbrState.STARTUP
        assert cca.pacing_gain == STARTUP_GAIN

    def test_no_pacing_before_first_estimate(self):
        assert Bbr().pacing_rate_bps() is None

    def test_filters_track_samples(self):
        cca = Bbr()
        ack(cca, rtt_ns=20 * MS, ack_seq=10_000, snd_nxt=50_000,
            now_ns=0, rate_bps=5e6)
        assert cca.btlbw_bps == 5e6
        assert cca.rtprop_ns == 20 * MS

    def test_full_pipe_exits_startup(self):
        cca = Bbr()
        seq = 0
        now = 0
        # Flat delivery rate over several rounds -> pipe declared full.
        for round_index in range(6):
            seq += 50_000
            now += 20 * MS
            ack(cca, rtt_ns=20 * MS, ack_seq=seq, snd_nxt=seq + 50_000,
                now_ns=now, rate_bps=10e6, in_flight=10**9)
        assert cca.state in (BbrState.DRAIN, BbrState.PROBE_BW)

    def test_drain_transitions_to_probe_bw(self):
        cca = Bbr()
        seq, now = 0, 0
        for _ in range(6):
            seq += 50_000
            now += 20 * MS
            ack(cca, rtt_ns=20 * MS, ack_seq=seq, snd_nxt=seq + 50_000,
                now_ns=now, rate_bps=10e6, in_flight=10**9)
        # Low inflight ends DRAIN.
        ack(cca, rtt_ns=20 * MS, ack_seq=seq + 1000,
            snd_nxt=seq + 51_000, now_ns=now + MS, rate_bps=10e6,
            in_flight=0)
        assert cca.state is BbrState.PROBE_BW


class TestBbrSteadyState:
    def make_probe_bw(self):
        cca = Bbr()
        seq, now = 0, 0
        for _ in range(6):
            seq += 50_000
            now += 20 * MS
            ack(cca, rtt_ns=20 * MS, ack_seq=seq, snd_nxt=seq + 50_000,
                now_ns=now, rate_bps=10e6, in_flight=10**9)
        ack(cca, rtt_ns=20 * MS, ack_seq=seq + 1000,
            snd_nxt=seq + 51_000, now_ns=now + MS, rate_bps=10e6,
            in_flight=0)
        return cca, seq + 1000, now + MS

    def test_pacing_rate_follows_btlbw(self):
        cca, _, _ = self.make_probe_bw()
        assert cca.pacing_rate_bps() == pytest.approx(
            cca.pacing_gain * 10e6)

    def test_cwnd_is_two_bdp(self):
        cca, _, _ = self.make_probe_bw()
        bdp = 10e6 / 8 * (20 * MS) / 1e9
        assert cca.cwnd_bytes == pytest.approx(2 * bdp)

    def test_gain_cycle_advances(self):
        cca, seq, now = self.make_probe_bw()
        gains = set()
        for _ in range(20):
            seq += 10_000
            now += 25 * MS  # > rtprop each step.
            ack(cca, rtt_ns=20 * MS, ack_seq=seq, snd_nxt=seq + 10_000,
                now_ns=now, rate_bps=10e6)
            gains.add(cca.pacing_gain)
        assert 1.25 in gains and 0.75 in gains

    def test_ignores_loss_signals(self):
        cca, _, _ = self.make_probe_bw()
        before = cca.cwnd_bytes
        cca.on_enter_recovery(10**6, now_ns=0)
        cca.on_retransmit_timeout(10**6, now_ns=0)
        cca.on_ecn(now_ns=0)
        assert cca.cwnd_bytes == before

    def test_probe_rtt_entered_when_rtprop_stale(self):
        cca, seq, now = self.make_probe_bw()
        # 11 seconds with no lower RTT: rtprop expires.
        now += 11_000 * MS
        seq += 10_000
        ack(cca, rtt_ns=25 * MS, ack_seq=seq, snd_nxt=seq + 10_000,
            now_ns=now, rate_bps=10e6)
        assert cca.state is BbrState.PROBE_RTT
        assert cca.cwnd_bytes == PROBE_RTT_CWND_SEGMENTS * MSS_BYTES

    def test_probe_rtt_exits_back_to_probe_bw(self):
        cca, seq, now = self.make_probe_bw()
        now += 11_000 * MS
        seq += 10_000
        ack(cca, rtt_ns=25 * MS, ack_seq=seq, snd_nxt=seq + 10_000,
            now_ns=now, rate_bps=10e6)
        now += 250 * MS
        seq += 10_000
        ack(cca, rtt_ns=25 * MS, ack_seq=seq, snd_nxt=seq + 10_000,
            now_ns=now, rate_bps=10e6)
        assert cca.state is BbrState.PROBE_BW

    def test_app_limited_samples_do_not_lower_btlbw(self):
        cca, seq, now = self.make_probe_bw()
        before = cca.btlbw_bps
        cca.on_ack(AckContext(acked_bytes=MSS_BYTES, ack_seq=seq + 1,
                              rtt_ns=20 * MS, now_ns=now + MS,
                              in_flight_bytes=0, snd_nxt=seq + 2,
                              delivery_rate_bps=1e6,
                              is_app_limited=True))
        assert cca.btlbw_bps == before
