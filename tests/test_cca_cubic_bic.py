"""Unit tests for Cubic and Bic window dynamics."""

import pytest

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cca import AckContext
from repro.tcp.cubic import Bic, Cubic

SECOND_NS = 1_000_000_000


def ack(cca, now_ns, acked=MSS_BYTES, rtt_ns=20_000_000):
    cca.on_ack(AckContext(acked_bytes=acked, ack_seq=0, rtt_ns=rtt_ns,
                          now_ns=now_ns, in_flight_bytes=0, snd_nxt=0))


def into_avoidance(cca, cwnd_seg=50):
    cca.cwnd_bytes = cwnd_seg * MSS_BYTES
    cca.ssthresh_bytes = cwnd_seg * MSS_BYTES


class TestCubicReduction:
    def test_beta_reduction(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(70 * MSS_BYTES)

    def test_w_max_recorded(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        assert cca._w_max_seg == pytest.approx(100)

    def test_fast_convergence_lowers_w_max(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        # Second loss below the previous w_max triggers fast
        # convergence: remembered peak shrinks below the actual cwnd.
        cca.cwnd_bytes = 80 * MSS_BYTES
        cca.on_enter_recovery(80 * MSS_BYTES, now_ns=SECOND_NS)
        assert cca._w_max_seg == pytest.approx(80 * (2 - 0.7) / 2)


class TestCubicGrowth:
    def test_k_matches_rfc_formula(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        ack(cca, now_ns=1_000_000)  # Starts the epoch.
        expected_k = ((100 - 70) / Cubic.C) ** (1 / 3)
        assert cca._k_sec == pytest.approx(expected_k, rel=0.01)

    def test_concave_region_approaches_w_max(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        # Ack steadily for K seconds; the window should approach w_max.
        k_ns = int(cca._k_sec * SECOND_NS) if cca._k_sec else 0
        now = 0
        for _ in range(2000):
            now += 10_000_000
            ack(cca, now_ns=now)
        assert cca.cwnd_bytes / MSS_BYTES >= 90

    def test_convex_region_accelerates(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        samples = []
        now = 0
        for step in range(3000):
            now += 10_000_000
            ack(cca, now_ns=now)
            samples.append(cca.cwnd_bytes)
        # Growth rate late in the epoch exceeds growth just after K.
        early = samples[1500] - samples[1400]
        late = samples[2900] - samples[2800]
        assert late > early

    def test_cubic_beats_reno_growth_at_long_rtt(self):
        """The headline property: over a long-RTT path Cubic regrows
        much faster than AIMD would."""
        cca = Cubic()
        into_avoidance(cca, 400)
        cca.on_enter_recovery(400 * MSS_BYTES, now_ns=0)
        start = cca.cwnd_bytes
        now = 0
        rtt_ns = 200_000_000
        # 20 seconds = 100 RTTs; Reno would add ~100 MSS.
        for _ in range(2000):
            now += 10_000_000
            ack(cca, now_ns=now, rtt_ns=rtt_ns)
        gained_seg = (cca.cwnd_bytes - start) / MSS_BYTES
        assert gained_seg > 150


class TestCubicTimeout:
    def test_timeout_resets_epoch(self):
        cca = Cubic()
        into_avoidance(cca, 100)
        ack(cca, now_ns=1_000_000)
        cca.on_retransmit_timeout(100 * MSS_BYTES, now_ns=2_000_000)
        assert cca._epoch_start_ns is None
        assert cca.cwnd_bytes == MSS_BYTES


class TestBic:
    def test_reduction_uses_bic_beta(self):
        cca = Bic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(80 * MSS_BYTES)

    def test_low_window_uses_reno_beta(self):
        cca = Bic()
        into_avoidance(cca, 10)
        cca.on_enter_recovery(10 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(5 * MSS_BYTES)

    def test_binary_search_increment_is_half_distance(self):
        cca = Bic()
        cca._w_max_seg = 100
        cca.cwnd_bytes = 80 * MSS_BYTES
        assert cca._increment_seg() == pytest.approx(10)

    def test_increment_capped_at_smax(self):
        cca = Bic()
        cca._w_max_seg = 1000
        cca.cwnd_bytes = 100 * MSS_BYTES
        assert cca._increment_seg() == Bic.smax_seg

    def test_max_probing_beyond_w_max(self):
        cca = Bic()
        cca._w_max_seg = 50
        cca.cwnd_bytes = 60 * MSS_BYTES
        assert cca._increment_seg() == pytest.approx(10)

    def test_growth_converges_toward_w_max(self):
        cca = Bic()
        into_avoidance(cca, 100)
        cca.on_enter_recovery(100 * MSS_BYTES, now_ns=0)
        for step in range(4000):
            ack(cca, now_ns=step * 1_000_000)
        assert cca.cwnd_bytes / MSS_BYTES >= 95
