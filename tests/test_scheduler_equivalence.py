"""Order-equivalence harness for the scheduler backends.

PR 3 made the pending-event set pluggable (binary heap vs calendar
queue).  Deterministic replay only survives that if every backend
executes the identical ``(time, seq)`` sequence — nondecreasing time,
FIFO among ties, exact cancellation — under any workload.  Hypothesis
drives both backends (plus adversarially tiny calendar configurations
that force bucket wraparound and resizing) with the same program and
compares the traces; scenario-level tests then pin down that scheduler
choice and the ``REPRO_DEBUG`` gate never change a ``ScenarioResult``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import invariants
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.netsim.engine import (CalendarScheduler, HeapScheduler,
                                 SCHEDULERS, SimulationError, Simulator,
                                 make_scheduler)

# Tight time range to force same-timestamp ties; tiny calendar
# configurations to force year wraparound, the sparse-horizon fallback,
# and grow/shrink rebuilds.
EVENT_BATCH = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),   # time_ns
              st.booleans(),                            # cancelled?
              st.integers(min_value=0, max_value=3)),   # children
    min_size=0, max_size=80)

SCHEDULER_FACTORIES = [
    ("heap", HeapScheduler),
    ("calendar", CalendarScheduler),
    ("calendar-tiny", lambda: CalendarScheduler(bucket_width_ns=3,
                                                num_buckets=2)),
    ("calendar-wide", lambda: CalendarScheduler(bucket_width_ns=10 ** 9,
                                                num_buckets=4)),
]


def _execute(batch, scheduler):
    """Run one program, returning the (now_ns, tag) firing trace."""
    sim = Simulator(scheduler=scheduler)
    trace = []

    def fire(tag, children, spacing):
        trace.append((sim.now_ns, tag))
        for child in range(children):
            event = sim.schedule(spacing + child, fire,
                                 (tag, child), 0, spacing)
            if (child + spacing) % 3 == 0:  # Deterministic mid-run cancel.
                event.cancel()

    events = []
    for tag, (time_ns, cancel, children) in enumerate(batch):
        events.append(sim.schedule_at(time_ns, fire, tag, children,
                                      time_ns % 5 + 1))
        if cancel:
            events[-1].cancel()
    sim.run()
    return trace


@settings(deadline=None, max_examples=150)
@given(EVENT_BATCH)
def test_all_backends_execute_identical_sequences(batch):
    reference = _execute(batch, HeapScheduler())
    for name, factory in SCHEDULER_FACTORIES[1:]:
        assert _execute(batch, factory()) == reference, name


@settings(deadline=None, max_examples=100)
@given(EVENT_BATCH)
def test_calendar_matches_stable_sort_contract(batch):
    """The calendar backend independently satisfies the time/FIFO order."""
    sim = Simulator(scheduler=CalendarScheduler(bucket_width_ns=5,
                                                num_buckets=3))
    fired = []
    events = []
    for index, (time_ns, cancel, _children) in enumerate(batch):
        events.append((sim.schedule_at(time_ns, fired.append, index),
                       time_ns, cancel))
    for event, _, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    live = [(time_ns, index)
            for index, (_, time_ns, cancel) in enumerate(events)
            if not cancel]
    expected = [index for _, index in
                sorted(live, key=lambda pair: pair[0])]
    assert fired == expected


@settings(deadline=None, max_examples=100)
@given(EVENT_BATCH, st.integers(min_value=1, max_value=60))
def test_backends_match_under_chunked_runs_and_peeks(batch, chunk_ns):
    """Backends agree when scheduling interleaves with peeks/bounded runs.

    ``peek_time_ns`` and the ``until_ns`` push-back in ``run`` pop the
    next entry and re-push it; a later schedule may then legally land
    *before* the pushed-back entry.  Regression for the calendar queue
    executing such workloads out of order (clock rewind).
    """
    def run_chunked(factory):
        sim = Simulator(scheduler=factory())
        trace = []

        def fire(tag):
            trace.append((sim.now_ns, tag))

        for chunk_start in range(0, len(batch), 5):
            base = sim.now_ns
            for tag, (time_ns, cancel, _children) in enumerate(
                    batch[chunk_start:chunk_start + 5], chunk_start):
                event = sim.schedule_at(base + time_ns, fire, tag)
                if cancel:
                    event.cancel()
            sim.peek_time_ns()
            sim.run(until_ns=base + chunk_ns)
        sim.run()
        return trace

    reference = run_chunked(HeapScheduler)
    for name, factory in SCHEDULER_FACTORIES[1:]:
        assert run_chunked(factory) == reference, name


@pytest.mark.parametrize("name,factory", SCHEDULER_FACTORIES)
class TestScheduleAfterPushBack:
    """Pinned repros for the calendar-queue scan-origin clamp."""

    def test_schedule_after_peek(self, name, factory):
        sim = Simulator(scheduler=factory())
        fired = []
        sim.schedule_at(640_000, fired.append, "late")
        assert sim.peek_time_ns() == 640_000  # Pops and re-pushes.
        sim.schedule_at(5_000, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now_ns == 640_000

    def test_schedule_between_bounded_runs(self, name, factory):
        sim = Simulator(scheduler=factory())
        fired = []
        sim.schedule_at(640_000, fired.append, "late")
        # Pops the 640us event and pushes it back past the bound.
        sim.run(until_ns=10_000)
        assert sim.now_ns == 10_000
        sim.schedule_at(20_000, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now_ns == 640_000

    def test_schedule_after_max_events_push_back(self, name, factory):
        sim = Simulator(scheduler=factory())
        fired = []
        sim.schedule_at(1_000, fired.append, "first")
        sim.schedule_at(640_000, fired.append, "late")
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=1)
        sim.schedule_at(5_000, fired.append, "early")
        sim.run()
        assert fired == ["first", "early", "late"]


class TestSchedulerSelection:
    def test_registry_names(self):
        assert set(SCHEDULERS) == {"heap", "calendar"}
        assert isinstance(make_scheduler("heap"), HeapScheduler)
        assert isinstance(make_scheduler("calendar"), CalendarScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            Simulator(scheduler="splay")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert isinstance(Simulator().scheduler, CalendarScheduler)
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert isinstance(Simulator().scheduler, HeapScheduler)

    def test_instance_passes_through(self):
        backend = CalendarScheduler(bucket_width_ns=10, num_buckets=8)
        assert Simulator(scheduler=backend).scheduler is backend

    def test_calendar_rejects_degenerate_config(self):
        with pytest.raises(ValueError):
            CalendarScheduler(bucket_width_ns=0)
        with pytest.raises(ValueError):
            CalendarScheduler(num_buckets=0)


# -- scenario-level parity: backends and debug gating --------------------------

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def _tiny_result(**kwargs):
    spec = ScenarioSpec(name="sched_eq", rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=1.5)
    scaled = TINY_POLICY.apply(spec)
    return run_scenario(scaled, Discipline.CEBINAE, collect_series=True,
                        **kwargs)


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestScenarioParity:
    def test_calendar_scheduler_reproduces_heap_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        heap_run = _tiny_result()
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        calendar_run = _tiny_result()
        assert _result_json(calendar_run) == _result_json(heap_run)
        assert calendar_run == heap_run

    def test_debug_on_off_reproduce_identically(self, monkeypatch):
        monkeypatch.setattr(invariants, "DEBUG", True)
        debug_run = _tiny_result()
        monkeypatch.setattr(invariants, "DEBUG", False)
        release_run = _tiny_result()
        assert _result_json(release_run) == _result_json(debug_run)
        assert release_run == debug_run

    def test_debug_off_calendar_matches_debug_on_heap(self, monkeypatch):
        """The two knobs compose without perturbing results."""
        monkeypatch.setattr(invariants, "DEBUG", True)
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        reference = _tiny_result()
        monkeypatch.setattr(invariants, "DEBUG", False)
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        fast_path = _tiny_result()
        assert _result_json(fast_path) == _result_json(reference)


class TestDebugGate:
    def test_pytest_arms_debug_by_default(self):
        # The suite must always exercise the validated path.
        assert invariants.DEBUG

    def test_set_debug_returns_previous(self):
        previous = invariants.set_debug(False)
        try:
            assert previous is True
            assert invariants.set_debug(True) is False
        finally:
            invariants.set_debug(previous)

    def test_engine_validates_when_armed(self):
        sim = Simulator()
        with pytest.raises(invariants.InvariantViolation):
            sim.schedule(1.5, lambda: None)

    def test_engine_skips_validation_when_released(self, monkeypatch):
        # Release runs pay zero per-event validation: a float delay is
        # no longer intercepted (the contract is *proved* under debug,
        # not re-checked per event in production).
        monkeypatch.setattr(invariants, "DEBUG", False)
        sim = Simulator()
        sim.schedule(1, lambda: None)  # Normal path still works.
        sim.schedule(1.5, lambda: None)  # Not intercepted when released.

    def test_run_until_is_always_validated(self, monkeypatch):
        # Once per run, not per event — stays armed in release mode.
        monkeypatch.setattr(invariants, "DEBUG", False)
        sim = Simulator()
        with pytest.raises(invariants.InvariantViolation):
            sim.run(until_ns=0.5)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "0")
        assert invariants._default_debug() is False
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert invariants._default_debug() is True
        monkeypatch.delenv("REPRO_DEBUG")
        assert invariants._default_debug() is True  # pytest is loaded.
