"""Kill-resume property: a murdered sweep resumes byte-identically.

The fabric's headline guarantee is that SIGKILLing a worker at *any*
point — between tasks, mid-task, holding a lease — loses nothing:
``sweep resume`` breaks the orphaned lease, re-runs whatever lacks a
cache entry, and the merged result document is byte-identical to an
uninterrupted run, because results are keyed by deterministic
fingerprints and written atomically.

Hypothesis drives the kill point (how many tasks the victim completes
before the SIGKILL) and the scheduler backend (heap|calendar via
``REPRO_SCHEDULER``, exercising the cross-backend determinism
contract).  The victim is a real ``python -m repro.sweep.cli work``
subprocess so the kill exercises the honest path: orphaned lease file,
dead pid, no graceful flush.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sweep.cli import main as sweep_main
from repro.sweep.manifest import SweepDir, manifest_from_callables

TASK_COUNT = 6

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="POSIX-only chaos drill")


def small_manifest():
    return manifest_from_callables("resume-drill", [
        {"label": f"task-{i}",
         "fn": "repro.sweep.tasks:checksum",
         "kwargs": {"label": f"task-{i}", "seed": i, "rounds": 50}}
        for i in range(TASK_COUNT)])


def merged_document(sweep_dir):
    manifest = SweepDir(sweep_dir).load_manifest()
    cache = SweepDir(sweep_dir).cache()
    payloads = [cache.load(task.fingerprint)
                for task in manifest.tasks]
    return json.dumps(payloads, sort_keys=True)


def run_victim(sweep_dir, max_tasks, scheduler):
    """A real worker subprocess, SIGKILLed after ``max_tasks`` tasks.

    ``--max-tasks`` parks the worker at an exact progress point (it
    idles afterwards only because it exits); killing it right after
    guarantees an orphaned lease is plausible but not required — the
    property must hold either way.
    """
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   [os.path.join(os.path.dirname(__file__), "..",
                                 "src")]
                   + os.environ.get("PYTHONPATH", "").split(os.pathsep)),
               REPRO_SCHEDULER=scheduler)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.sweep.cli", "work",
         str(sweep_dir), "--worker-id", "victim",
         "--max-tasks", str(max_tasks), "--expiry-s", "300"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 60  # simlint: allow[D103] subprocess watchdog
    while time.monotonic() < deadline:  # simlint: allow[D103] subprocess watchdog
        done = SweepDir(sweep_dir).status()["counts"]["done"]
        if done >= max_tasks or proc.poll() is not None:
            break
        time.sleep(0.02)  # simlint: allow[D103] subprocess poll pacing
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait()


class TestKillResume:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    @given(kill_after=st.integers(min_value=0,
                                  max_value=TASK_COUNT - 1),
           scheduler=st.sampled_from(["heap", "calendar"]))
    def test_resume_after_sigkill_is_byte_identical(
            self, tmp_path_factory, kill_after, scheduler):
        root = tmp_path_factory.mktemp("drill")
        baseline_dir = root / "baseline"
        murdered_dir = root / "murdered"
        for directory in (baseline_dir, murdered_dir):
            SweepDir(directory).initialise(small_manifest())

        # Uninterrupted reference run, in-process.
        assert sweep_main(["resume", str(baseline_dir),
                           "--quiet"]) == 0
        baseline = merged_document(baseline_dir)

        # The victim completes ``kill_after`` tasks, then dies hard
        # (either SIGKILLed mid-idle or already exited at its budget —
        # both leave a sweep that must resume cleanly).
        run_victim(murdered_dir, kill_after, scheduler)
        status = SweepDir(murdered_dir).status()
        assert status["counts"]["done"] >= kill_after

        # Resume (dead-pid fast path breaks any orphaned lease
        # immediately; no expiry wait) and demand byte-identity.
        assert sweep_main(["resume", str(murdered_dir),
                           "--quiet"]) == 0
        counts = SweepDir(murdered_dir).status()["counts"]
        assert counts["done"] == TASK_COUNT
        assert counts["pending"] == 0
        assert counts["quarantined"] == 0
        assert merged_document(murdered_dir) == baseline
        assert list(
            (murdered_dir / "leases").glob("*.lease")) == []


class TestScenarioKillResume:
    """One non-property drill over *real simulations*, both schedulers.

    The callable drill above proves the fabric machinery; this proves
    the byte-identity claim for actual ScenarioResult payloads, whose
    determinism across heap|calendar is the repo's core contract.
    """

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_partial_sweep_resumes_to_reference(self, tmp_path,
                                                scheduler,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "drill.json").write_text(json.dumps({
            "schema_version": 1, "name": "drill",
            "scenario": {"rate_bps": 100e6, "rtts_ms": [20, 30],
                         "buffer_mtus": 60,
                         "cca_mix": [["newreno", 1], ["newreno", 1]],
                         "duration_s": 2.0},
            "policy": {"target_rate_bps": 5e6, "max_rate_bps": 5e6},
            "disciplines": ["fifo", "cebinae"], "repeats": 1}))
        baseline_dir = tmp_path / "baseline"
        partial_dir = tmp_path / "partial"
        for directory in (baseline_dir, partial_dir):
            assert sweep_main(["init", str(directory), "--suite",
                               str(suite)]) == 0
        assert sweep_main(["resume", str(baseline_dir),
                           "--quiet"]) == 0
        # Simulate a crash after one task: run with a budget, leave an
        # unreleased (stale-pid) lease behind by hand.
        assert sweep_main(["work", str(partial_dir), "--worker-id",
                           "crashed", "--max-tasks", "1"]) == 0
        store_dir = partial_dir / "leases"
        (store_dir / "shard-00001.lease").write_text(json.dumps({
            "lease_version": 1, "key": "shard-00001",
            "worker_id": "crashed", "nonce": "dead",
            "pid": 2 ** 22 - 1, "host": __import__("socket")
            .gethostname(),
            "acquired_unix": 0.0, "renewed_unix": 0.0,
            "expiry_s": 30.0}))
        assert sweep_main(["resume", str(partial_dir),
                           "--quiet"]) == 0
        assert merged_document(partial_dir) == \
            merged_document(baseline_dir)
