"""Tests for the fluid convergence model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fairness.convergence import (ConvergenceTrace,
                                        geometric_convergence_steps,
                                        taxation_trajectory)
from repro.fairness.metrics import jain_fairness_index


class TestGeometricModel:
    def test_paper_example_two(self):
        """ln(2/3)/ln(0.99) ~ 40 steps for excess 3/2 at tau 1%."""
        steps = geometric_convergence_steps(1.5, 0.01)
        assert steps == pytest.approx(
            math.log(2 / 3) / math.log(0.99))
        assert 40 < steps < 41

    def test_no_excess_is_instant(self):
        assert geometric_convergence_steps(1.0, 0.01) == 0.0

    def test_zero_tax_never(self):
        assert geometric_convergence_steps(2.0, 0.0) == math.inf

    def test_full_tax_one_step(self):
        assert geometric_convergence_steps(2.0, 1.0) == 1.0

    def test_monotone_in_tau(self):
        taus = [0.01, 0.02, 0.05, 0.1]
        steps = [geometric_convergence_steps(2.0, tau) for tau in taus]
        assert steps == sorted(steps, reverse=True)


class TestTrajectory:
    def test_strawman_example_converges(self):
        """Figure 2a's {6,1,1,1,1} allocation converges to equality."""
        trace = taxation_trajectory([6, 1, 1, 1, 1], capacity=10,
                                    tau=0.01, steps=800)
        final = trace.rates_per_step[-1]
        assert jain_fairness_index(final) > 0.99
        assert sum(final) == pytest.approx(10, rel=0.02)

    def test_already_fair_stays_fair(self):
        trace = taxation_trajectory([2, 2, 2, 2, 2], capacity=10,
                                    tau=0.01, steps=100)
        assert min(trace.jfi_series()) > 0.999

    def test_higher_tau_converges_faster(self):
        slow = taxation_trajectory([8, 1, 1], capacity=10, tau=0.01,
                                   steps=1000).convergence_step()
        fast = taxation_trajectory([8, 1, 1], capacity=10, tau=0.05,
                                   steps=1000).convergence_step()
        assert fast < slow

    def test_convergence_roughly_matches_geometric_model(self):
        """The trajectory's convergence time has the model's order of
        magnitude (the model ignores the growing denominator, so exact
        equality is not expected)."""
        tau = 0.02
        trace = taxation_trajectory([3, 1], capacity=4, tau=tau,
                                    steps=2000)
        measured = trace.convergence_step(tolerance=0.02)
        model = geometric_convergence_steps(1.5, tau)
        assert 0.3 * model < measured < 6 * model

    def test_slow_growth_slows_convergence(self):
        fast = taxation_trajectory([8, 1, 1], capacity=10, tau=0.02,
                                   growth_fraction=1.0,
                                   steps=2000).convergence_step()
        slow = taxation_trajectory([8, 1, 1], capacity=10, tau=0.02,
                                   growth_fraction=0.1,
                                   steps=2000).convergence_step()
        assert slow >= fast

    def test_capacity_never_exceeded(self):
        trace = taxation_trajectory([20, 1], capacity=10, tau=0.05,
                                    steps=50)
        for rates in trace.rates_per_step[1:]:
            assert sum(rates) <= 10 * (1 + 1e-9)

    def test_reclaim_weights_split_headroom_proportionally(self):
        """One window: the taxed flow's release lands on the claiming
        flows in proportion to their weights, not equally."""
        equal = taxation_trajectory([8, 1, 1], capacity=10, tau=0.1,
                                    steps=1)
        weighted = taxation_trajectory([8, 1, 1], capacity=10, tau=0.1,
                                       steps=1,
                                       reclaim_weights=[0, 3, 1])
        gain_equal = [after - before for before, after in
                      zip(equal.rates_per_step[0],
                          equal.rates_per_step[1])]
        gain_weighted = [after - before for before, after in
                         zip(weighted.rates_per_step[0],
                             weighted.rates_per_step[1])]
        assert gain_equal[1] == pytest.approx(gain_equal[2])
        assert gain_weighted[1] == pytest.approx(3 * gain_weighted[2])
        # Conservation: the same total headroom moved either way.
        assert sum(gain_weighted) == pytest.approx(sum(gain_equal))

    def test_uniform_reclaim_weights_match_default(self):
        default = taxation_trajectory([6, 1, 1, 1, 1], capacity=10,
                                      tau=0.02, steps=50)
        uniform = taxation_trajectory([6, 1, 1, 1, 1], capacity=10,
                                      tau=0.02, steps=50,
                                      reclaim_weights=[2, 2, 2, 2, 2])
        assert default.rates_per_step == uniform.rates_per_step

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            taxation_trajectory([], capacity=10)
        with pytest.raises(ValueError):
            taxation_trajectory([1.0], capacity=0)
        with pytest.raises(ValueError):
            taxation_trajectory([1.0, 2.0], capacity=10,
                                reclaim_weights=[1.0])

    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8),
           st.floats(0.005, 0.1))
    @settings(max_examples=40)
    def test_jfi_converges_for_any_start(self, rates, tau):
        trace = taxation_trajectory(rates, capacity=sum(rates) or 1.0,
                                    tau=tau, steps=3000)
        assert trace.jfi_series()[-1] > 0.95
