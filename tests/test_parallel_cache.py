"""The on-disk result cache: round-trips, hits, and --no-cache.

The cache contract is ``from_dict(to_dict(r)) == r`` through real JSON
text, a warm cache replays results without simulating anything, and
``use_cache=False`` re-simulates every point even when entries exist.
"""

import json

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.parallel import (FailedRun, ResultCache, RunSpec,
                                        require, run_many)
from repro.experiments.runner import (Discipline, ScenarioResult,
                                      run_scenario)
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="cache", duration_s=2.0):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


class TestRoundTrip:
    def test_scenario_result_survives_json(self):
        # The richest shape: per-second series, start times, and the
        # Cebinae control-plane history (nested dataclasses + sets).
        scaled = tiny_scaled()
        result = run_scenario(scaled, Discipline.CEBINAE,
                              collect_series=True, record_history=True)
        text = json.dumps(result.to_dict())
        rebuilt = ScenarioResult.from_dict(json.loads(text))
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_minimal_result_survives_json(self):
        result = run_scenario(tiny_scaled(), Discipline.FIFO)
        assert result.goodput_series_bps is None
        assert result.cp_history is None
        rebuilt = ScenarioResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result


@pytest.fixture
def specs():
    return [RunSpec(tiny_scaled(), Discipline.FIFO),
            RunSpec(tiny_scaled(), Discipline.CEBINAE,
                    record_history=True)]


class TestCacheHits:
    def test_warm_cache_skips_simulation(self, tmp_path, specs,
                                         monkeypatch):
        first = [require(r) for r in
                 run_many(specs, workers=1, cache_dir=tmp_path,
                          progress=None)]
        assert len(ResultCache(tmp_path)) == len(specs)

        # Any attempt to simulate now blows up; a warm cache must not
        # need to.  (FailedRun would surface the blow-up: run_tasks
        # converts exhausted retries into sentinels, not raises.)
        def refuse(**kwargs):
            raise AssertionError("cache hit should not simulate")

        monkeypatch.setattr(parallel, "run_scenario", refuse)
        replayed = run_many(specs, workers=1, cache_dir=tmp_path,
                            progress=None)
        assert not any(isinstance(r, FailedRun) for r in replayed)
        assert replayed == first

    def test_hit_and_miss_counters(self, tmp_path, specs):
        cache = ResultCache(tmp_path)
        run_many(specs, workers=1, cache_dir=cache, progress=None)
        assert (cache.hits, cache.misses) == (0, len(specs))
        run_many(specs, workers=1, cache_dir=cache, progress=None)
        assert cache.hits == len(specs)

    def test_stale_cache_version_is_ignored(self, tmp_path, specs):
        run_many(specs, workers=1, cache_dir=tmp_path, progress=None)
        for path in tmp_path.glob("*.json"):
            entry = json.loads(path.read_text())
            entry["cache_version"] = -1
            path.write_text(json.dumps(entry))
        cache = ResultCache(tmp_path)
        assert cache.load(specs[0].fingerprint()) is None
        assert cache.misses == 1


class TestNoCache:
    def test_use_cache_false_forces_resimulation(self, tmp_path, specs,
                                                 monkeypatch):
        first = [require(r) for r in
                 run_many(specs, workers=1, cache_dir=tmp_path,
                          progress=None)]

        calls = []

        def counting(**kwargs):
            calls.append(kwargs)
            return run_scenario(**kwargs)

        monkeypatch.setattr(parallel, "run_scenario", counting)
        again = [require(r) for r in
                 run_many(specs, workers=1, cache_dir=tmp_path,
                          use_cache=False, progress=None)]
        # Every point re-simulated despite a warm cache — and
        # determinism makes the fresh results identical to the cached
        # ones.
        assert len(calls) == len(specs)
        assert again == first
