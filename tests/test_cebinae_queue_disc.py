"""Tests for the Cebinae queue disc (data-plane half)."""

import pytest

from repro.core.lbf import FlowGroup
from repro.core.params import CebinaeParams
from repro.core.queue_disc import CebinaeQueueDisc
from repro.netsim.engine import MILLISECOND, Simulator
from repro.netsim.packet import EcnCodepoint, FlowId, Packet


def make_qdisc(rate_bps=8e6, buffer_bytes=90_000, dt_ms=100,
               ecn_marking=True, exact_cache=True):
    sim = Simulator()
    params = CebinaeParams(dt_ns=dt_ms * MILLISECOND,
                           vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                           ecn_marking=ecn_marking,
                           use_exact_cache=exact_cache)
    qdisc = CebinaeQueueDisc(sim, params, rate_bps, buffer_bytes)
    return sim, qdisc


def make_packet(port=1, size=1500, ecn=EcnCodepoint.NOT_ECT):
    return Packet(flow=FlowId(1, 2, port, 80), size_bytes=size, ecn=ecn)


class TestConstruction:
    def test_equation_two_enforced(self):
        sim = Simulator()
        params = CebinaeParams(dt_ns=10 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND)
        with pytest.raises(ValueError):
            # 90 kB at 8 Mbps needs dT >= 90 ms.
            CebinaeQueueDisc(sim, params, 8e6, 90_000)

    def test_starts_unsaturated(self):
        _, qdisc = make_qdisc()
        assert not qdisc.saturated
        assert qdisc.top_flows == set()


class TestUnsaturatedPhase:
    def test_passthrough_fifo_order(self):
        _, qdisc = make_qdisc()
        packets = [make_packet(port=i) for i in range(5)]
        for packet in packets:
            assert qdisc.enqueue(packet)
        assert [qdisc.dequeue() for _ in range(5)] == packets

    def test_physical_buffer_drops(self):
        _, qdisc = make_qdisc(buffer_bytes=90_000)
        accepted = sum(1 for _ in range(100)
                       if qdisc.enqueue(make_packet()))
        assert accepted == 60  # 90 kB / 1500 B.
        assert qdisc.buffer_drops == 40

    def test_aggregate_filter_eventually_drops_bursts(self):
        """Even unsaturated, a burst beyond two rounds of capacity is
        dropped by the total_bytes filter (drain-time guarantee)."""
        _, qdisc = make_qdisc(rate_bps=8e6, buffer_bytes=400_000,
                              dt_ms=500)
        results = [qdisc.enqueue(make_packet()) for _ in range(300)]
        assert not all(results)
        assert qdisc.lbf_drops + qdisc.buffer_drops > 0


class TestSaturatedPhase:
    def saturated_qdisc(self, top_rate=100_000, bottom_rate=900_000):
        sim, qdisc = make_qdisc()
        qdisc.set_membership({FlowId(1, 2, 1, 80)})
        qdisc.set_saturated(True, top_share=0.1, bottom_share=0.9)
        for queue_index in (0, 1):
            qdisc.lbf.rates[queue_index][FlowGroup.TOP] = top_rate
            qdisc.lbf.rates[queue_index][FlowGroup.BOTTOM] = bottom_rate
        return sim, qdisc

    def test_classification(self):
        _, qdisc = self.saturated_qdisc()
        assert qdisc.group_of(FlowId(1, 2, 1, 80)) is FlowGroup.TOP
        assert qdisc.group_of(FlowId(1, 2, 9, 80)) is FlowGroup.BOTTOM

    def test_top_flow_limited_bottom_flow_not(self):
        _, qdisc = self.saturated_qdisc()
        top_ok = sum(1 for _ in range(30)
                     if qdisc.enqueue(make_packet(port=1)))
        assert top_ok < 30  # Past 2 rounds of 10 kB: drops.
        assert qdisc.lbf_drops > 0
        bottom_ok = sum(1 for _ in range(30)
                        if qdisc.enqueue(make_packet(port=9)))
        assert bottom_ok == 30

    def test_delayed_packets_marked_ce(self):
        _, qdisc = self.saturated_qdisc()
        marked = 0
        for _ in range(12):
            packet = make_packet(port=1, ecn=EcnCodepoint.ECT0)
            if qdisc.enqueue(packet) and \
                    packet.ecn is EcnCodepoint.CE:
                marked += 1
        assert marked >= 1
        assert qdisc.ecn_marks == marked

    def test_not_ect_packets_never_marked(self):
        _, qdisc = self.saturated_qdisc()
        for _ in range(12):
            packet = make_packet(port=1, ecn=EcnCodepoint.NOT_ECT)
            qdisc.enqueue(packet)
            assert packet.ecn is EcnCodepoint.NOT_ECT

    def test_ecn_marking_disablable(self):
        sim, qdisc = make_qdisc(ecn_marking=False)
        qdisc.set_membership({FlowId(1, 2, 1, 80)})
        qdisc.set_saturated(True, top_share=0.1, bottom_share=0.9)
        for queue_index in (0, 1):
            qdisc.lbf.rates[queue_index][FlowGroup.TOP] = 100_000
        for _ in range(12):
            packet = make_packet(port=1, ecn=EcnCodepoint.ECT0)
            qdisc.enqueue(packet)
        assert qdisc.ecn_marks == 0


class TestPriorityService:
    def test_headq_served_before_tail(self):
        _, qdisc = self.__class__._qdisc_with_split()
        order = []
        while True:
            packet = qdisc.dequeue()
            if packet is None:
                break
            order.append(packet.meta.get("queue"))
        # All head packets come out before any tail packet.
        first_tail = order.index("tail") if "tail" in order else \
            len(order)
        assert all(tag == "tail" for tag in order[first_tail:])

    @staticmethod
    def _qdisc_with_split():
        sim, qdisc = make_qdisc()
        qdisc.set_membership({FlowId(1, 2, 1, 80)})
        qdisc.set_saturated(True, top_share=0.5, bottom_share=0.5)
        for queue_index in (0, 1):
            qdisc.lbf.rates[queue_index][FlowGroup.TOP] = 100_000
            qdisc.lbf.rates[queue_index][FlowGroup.BOTTOM] = 900_000
        head = qdisc.lbf.headq
        for _ in range(12):
            packet = make_packet(port=1)
            if qdisc.enqueue(packet):
                queue_index = "head" if packet in \
                    qdisc._queues[head] else "tail"
                packet.meta["queue"] = queue_index
        return sim, qdisc

    def test_work_conserving_across_queues(self):
        """Tail packets are served when headq is empty (the statistical
        multiplexing the paper prizes)."""
        sim, qdisc = self._qdisc_with_split()
        served = 0
        while qdisc.dequeue() is not None:
            served += 1
        assert served == len(qdisc._queues[0]) + \
            len(qdisc._queues[1]) + served  # Queue now empty.
        assert qdisc.dequeue() is None


class TestRotationAndEgress:
    def test_rotate_returns_retired_queue(self):
        sim, qdisc = make_qdisc()
        assert qdisc.rotate() == 0
        assert qdisc.lbf.headq == 1

    def test_rotation_residue_counted(self):
        sim, qdisc = make_qdisc()
        qdisc.enqueue(make_packet())
        qdisc.rotate()
        assert qdisc.rotation_residue == 1

    def test_on_transmit_updates_port_and_cache(self):
        sim, qdisc = make_qdisc()
        packet = make_packet(port=7, size=1000)
        qdisc.on_transmit(packet)
        assert qdisc.port_tx_bytes == 1000
        assert qdisc.cache.lookup(packet.flow) == 1000

    def test_phase_transitions_bootstrap_and_reset(self):
        sim, qdisc = make_qdisc()
        qdisc.lbf.total_bytes = 8000.0
        qdisc.set_saturated(True, top_share=0.25, bottom_share=0.75)
        assert qdisc.lbf.bytes[FlowGroup.TOP] == pytest.approx(2000)
        assert qdisc.lbf.bytes[FlowGroup.BOTTOM] == pytest.approx(6000)
        qdisc.set_saturated(False)
        assert qdisc.lbf.bytes[FlowGroup.TOP] == 0.0

    def test_byte_length_spans_both_queues(self):
        sim, qdisc = make_qdisc()
        qdisc.enqueue(make_packet(size=1000))
        qdisc.rotate()
        qdisc.enqueue(make_packet(size=500))
        assert qdisc.byte_length == 1500
        assert len(qdisc) == 2
