"""Integration tests: CCA interactions over a shared bottleneck.

These reproduce, at small scale, the qualitative phenomena the paper's
evaluation is built on: loss-based TCP beats delay-based, Cubic beats
NewReno, BBR holds a large share against many loss-based flows, FIFO
exhibits RTT unfairness, and FQ-CoDel equalises everything.
"""

import pytest

from repro.fairness.metrics import jain_fairness_index
from repro.netsim.engine import Simulator, seconds
from repro.netsim.fq_codel import fq_codel_factory
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import build_dumbbell
from repro.netsim.tracing import FlowMonitor
from repro.tcp.flows import connect_flow


def run_dumbbell(ccas, rtts_s, rate_bps=10e6, buffer_mtus=25,
                 duration_s=30.0, queue_factory=None):
    """Run one flow per (cca, rtt) pair; returns goodputs in bps."""
    sim = Simulator()
    factory = queue_factory or \
        (lambda spec: DropTailQueue.from_mtu_count(buffer_mtus))
    dumbbell = build_dumbbell([seconds(rtt) for rtt in rtts_s],
                              rate_bps, factory, sim=sim)
    monitor = FlowMonitor(sim)
    flows = []
    for index, cca in enumerate(ccas):
        flows.append(connect_flow(dumbbell.senders[index],
                                  dumbbell.receivers[index], cca,
                                  monitor=monitor,
                                  src_port=10_000 + index))
    sim.run(until_ns=seconds(duration_s))
    goodputs = monitor.goodputs_bps(seconds(duration_s))
    return [goodputs[flow.flow_id] for flow in flows]


class TestSingleFlow:
    @pytest.mark.parametrize("cca", ["newreno", "cubic", "bic",
                                     "vegas", "bbr"])
    def test_each_cca_fills_the_link(self, cca):
        goodputs = run_dumbbell([cca], [0.02], duration_s=20.0)
        assert goodputs[0] > 0.80 * 10e6, f"{cca} underutilises"


class TestHomogeneousSharing:
    @pytest.mark.parametrize("cca", ["newreno", "cubic", "vegas"])
    def test_equal_rtt_flows_share_fairly(self, cca):
        goodputs = run_dumbbell([cca] * 4, [0.03] * 4, duration_s=30.0)
        assert jain_fairness_index(goodputs) > 0.85
        assert sum(goodputs) > 0.8 * 10e6


class TestKnownUnfairness:
    def test_rtt_unfairness_under_fifo(self):
        """Figure 1's FIFO baseline: the short-RTT NewReno flow wins."""
        goodputs = run_dumbbell(["newreno", "newreno"], [0.02, 0.06],
                                duration_s=30.0)
        assert goodputs[0] > 1.5 * goodputs[1]

    def test_loss_based_beats_vegas(self):
        """Vegas backs off on queueing delay; NewReno fills the buffer
        (the Figure 7 effect)."""
        goodputs = run_dumbbell(["vegas", "vegas", "newreno"],
                                [0.05] * 3, buffer_mtus=60,
                                duration_s=30.0)
        vegas_total = goodputs[0] + goodputs[1]
        assert goodputs[2] > vegas_total

    def test_cubic_beats_newreno_on_long_rtt(self):
        """Cubic's RTT-independent growth outcompetes NewReno at long
        RTT (Table 2 rows 4-6)."""
        goodputs = run_dumbbell(["cubic", "newreno"], [0.1, 0.1],
                                buffer_mtus=85, duration_s=40.0)
        assert goodputs[0] > 1.2 * goodputs[1]

    def test_bbr_claims_large_share_against_reno_crowd(self):
        """One BBR flow against several NewReno flows holds well above
        its fair share (the Figure 8a effect)."""
        ccas = ["newreno"] * 6 + ["bbr"]
        goodputs = run_dumbbell(ccas, [0.05] * 7, buffer_mtus=40,
                                duration_s=30.0)
        fair_share = sum(goodputs) / len(goodputs)
        assert goodputs[-1] > 1.5 * fair_share


class TestFqCodelBaseline:
    def test_fq_codel_equalises_mixed_ccas(self):
        factory = fq_codel_factory(limit_packets=200)
        goodputs = run_dumbbell(["vegas", "vegas", "newreno", "cubic"],
                                [0.05] * 4, duration_s=30.0,
                                queue_factory=factory)
        assert jain_fairness_index(goodputs) > 0.9

    def test_fq_codel_removes_rtt_bias(self):
        factory = fq_codel_factory(limit_packets=200)
        fifo = run_dumbbell(["newreno", "newreno"], [0.02, 0.08],
                            duration_s=30.0)
        fq = run_dumbbell(["newreno", "newreno"], [0.02, 0.08],
                          duration_s=30.0, queue_factory=factory)
        assert jain_fairness_index(fq) > jain_fairness_index(fifo)
