"""Registry hygiene and the ``cebinae-repro suite`` command.

Exercises the directory loader's identity rules (file stem == spec
name, no duplicates, YAML gating) and the CLI end to end in a tmp
directory: --list, plain runs, --update-golden, --golden agreement,
mismatch exit codes, and the JSON mismatch artifact.
"""

import json
import sys

import pytest

from repro.suite import SpecError, SuiteRegistry, load_spec_file
from repro.suite.cli import main as suite_main

TINY_DOC = {
    "schema_version": 1,
    "name": "tiny",
    "scenario": {
        "rate_bps": 100e6,
        "rtts_ms": [20.0],
        "buffer_mtus": 60,
        "cca_mix": [["newreno", 2]],
        "duration_s": 0.5,
    },
    "policy": {"target_rate_bps": 5e6, "max_rate_bps": 5e6},
    "disciplines": ["fifo"],
}


def write_spec(directory, name, **overrides):
    doc = json.loads(json.dumps(TINY_DOC))
    doc["name"] = name
    doc.update(overrides)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return path


class TestRegistry:
    def test_stem_must_match_spec_name(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps(TINY_DOC), encoding="utf-8")
        with pytest.raises(SpecError, match="must match the file stem"):
            load_spec_file(path)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text("x = 1", encoding="utf-8")
        with pytest.raises(SpecError, match="unrecognised spec "
                                            "extension"):
            load_spec_file(path)

    def test_unparseable_json_is_a_spec_error(self, tmp_path):
        path = tmp_path / "tiny.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SpecError, match="not parseable"):
            load_spec_file(path)

    def test_duplicate_names_across_extensions_rejected(self, tmp_path):
        write_spec(tmp_path, "tiny")
        yaml = pytest.importorskip("yaml")
        (tmp_path / "tiny.yaml").write_text(
            yaml.safe_dump(TINY_DOC), encoding="utf-8")
        with pytest.raises(SpecError, match="duplicate suite spec"):
            SuiteRegistry.from_directory(tmp_path)

    def test_yaml_spec_loads_when_pyyaml_present(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "tiny.yaml"
        path.write_text(yaml.safe_dump(TINY_DOC), encoding="utf-8")
        spec = load_spec_file(path)
        assert spec.name == "tiny"

    def test_yaml_gated_with_clear_error(self, tmp_path, monkeypatch):
        # Simulate an environment without PyYAML (CI installs only
        # pytest + hypothesis): the error must say what to do.
        path = tmp_path / "tiny.yaml"
        path.write_text("name: tiny\n", encoding="utf-8")
        monkeypatch.setitem(sys.modules, "yaml", None)
        with pytest.raises(SpecError, match="PyYAML"):
            load_spec_file(path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="no spec files"):
            SuiteRegistry.from_directory(tmp_path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="not a suite directory"):
            SuiteRegistry.from_directory(tmp_path / "nope")

    def test_iteration_sorted_by_name(self, tmp_path):
        write_spec(tmp_path, "zeta")
        write_spec(tmp_path, "alpha")
        registry = SuiteRegistry.from_directory(tmp_path)
        assert registry.names == ["alpha", "zeta"]
        assert "alpha" in registry
        assert registry.get("alpha").name == "alpha"
        with pytest.raises(SpecError, match="unknown suite spec"):
            registry.get("missing")


class TestSuiteCli:
    @pytest.fixture()
    def suite_dir(self, tmp_path):
        directory = tmp_path / "suite"
        directory.mkdir()
        write_spec(directory, "tiny")
        return directory

    def test_list_prints_without_simulating(self, suite_dir, capsys):
        assert suite_main([str(suite_dir), "--list"]) == 0
        out = capsys.readouterr().out
        assert "tiny: dumbbell, 1 run(s)" in out
        assert "tiny/fifo" in out

    def test_bad_spec_exits_2(self, suite_dir, capsys):
        (suite_dir / "bad.json").write_text(
            json.dumps({"name": "bad"}), encoding="utf-8")
        assert suite_main([str(suite_dir), "--list"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_golden_roundtrip_and_mismatch(self, suite_dir, tmp_path,
                                           capsys):
        golden = tmp_path / "golden"
        cache = tmp_path / "cache"
        assert suite_main([str(suite_dir), "--update-golden",
                           str(golden)]) == 0
        assert (golden / "tiny.json").exists()

        # Fresh run against the goldens we just wrote: conformant.
        assert suite_main([str(suite_dir), "--golden", str(golden),
                           "--cache-dir", str(cache)]) == 0
        assert "golden conformance: all 1 spec(s) ok" in \
            capsys.readouterr().out

        # Corrupt one digest: exit 1 and a mismatch artifact naming it.
        doc = json.loads((golden / "tiny.json").read_text())
        label = sorted(doc["runs"])[0]
        doc["runs"][label]["result_sha256"] = "0" * 64
        (golden / "tiny.json").write_text(json.dumps(doc),
                                         encoding="utf-8")
        artifact = tmp_path / "mismatches.json"
        assert suite_main([str(suite_dir), "--golden", str(golden),
                           "--cache-dir", str(cache),
                           "--mismatch-out", str(artifact)]) == 1
        captured = capsys.readouterr()
        assert "MISMATCH" in captured.out
        assert "result_sha256" in captured.err
        report = json.loads(artifact.read_text())
        assert report["mismatches"]
        assert report["specs"]["tiny"]["mismatches"]

    def test_stale_spec_reported_as_fingerprint_drift(self, suite_dir,
                                                      tmp_path, capsys):
        golden = tmp_path / "golden"
        assert suite_main([str(suite_dir), "--update-golden",
                           str(golden)]) == 0
        # Edit the spec after goldens were cut: the check must call
        # out staleness (spec fingerprint) rather than a digest diff.
        write_spec(suite_dir, "tiny", base_seed=3)
        assert suite_main([str(suite_dir), "--golden", str(golden),
                           "--no-cache"]) == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_missing_golden_suggests_update(self, suite_dir, tmp_path,
                                            capsys):
        golden = tmp_path / "empty-golden"
        golden.mkdir()
        assert suite_main([str(suite_dir), "--golden", str(golden),
                           "--no-cache"]) == 1
        assert "--update-golden" in capsys.readouterr().err

    def test_cache_reused_across_runs(self, suite_dir, tmp_path):
        cache = tmp_path / "cache"
        assert suite_main([str(suite_dir), "--cache-dir",
                           str(cache)]) == 0
        cached = list(cache.rglob("*.json"))
        assert cached
        # Second run hits the cache (same fingerprints, no rewrites).
        mtimes = {path: path.stat().st_mtime_ns for path in cached}
        assert suite_main([str(suite_dir), "--cache-dir",
                           str(cache)]) == 0
        assert {path: path.stat().st_mtime_ns
                for path in cached} == mtimes
