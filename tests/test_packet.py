"""Tests for packets and flow identifiers."""

from repro.netsim.packet import (ACK_BYTES, HEADER_BYTES, MSS_BYTES,
                                 MTU_BYTES, EcnCodepoint, FlowId, Packet,
                                 PacketType, make_rotate_packet)


class TestFlowId:
    def test_equality_and_hash(self):
        a = FlowId(1, 2, 100, 80)
        b = FlowId(1, 2, 100, 80)
        assert a == b
        assert hash(a) == hash(b)

    def test_reversed_swaps_endpoints(self):
        flow = FlowId(1, 2, 100, 80)
        rev = flow.reversed()
        assert rev == FlowId(2, 1, 80, 100)
        assert rev.reversed() == flow

    def test_different_ports_differ(self):
        assert FlowId(1, 2, 100, 80) != FlowId(1, 2, 101, 80)

    def test_str_is_readable(self):
        assert str(FlowId(1, 2, 100, 80)) == "tcp:1:100->2:80"

    def test_usable_as_dict_key(self):
        table = {FlowId(1, 2, 3, 4): "x"}
        assert table[FlowId(1, 2, 3, 4)] == "x"


class TestPacket:
    def test_size_constants(self):
        assert MTU_BYTES == MSS_BYTES + HEADER_BYTES
        assert ACK_BYTES < MSS_BYTES

    def test_defaults(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        assert packet.ptype is PacketType.DATA
        assert packet.ecn is EcnCodepoint.NOT_ECT
        assert not packet.ece and not packet.cwr

    def test_is_data_is_ack(self):
        data = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        ack = Packet(flow=FlowId(2, 1, 4, 3), size_bytes=64,
                     ptype=PacketType.ACK)
        assert data.is_data and not data.is_ack
        assert ack.is_ack and not ack.is_data


class TestEcnMarking:
    def test_not_ect_cannot_be_marked(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        assert packet.mark_ce() is False
        assert packet.ecn is EcnCodepoint.NOT_ECT

    def test_ect0_marks_to_ce(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500,
                        ecn=EcnCodepoint.ECT0)
        assert packet.mark_ce() is True
        assert packet.ecn is EcnCodepoint.CE

    def test_ce_stays_ce(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500,
                        ecn=EcnCodepoint.CE)
        assert packet.mark_ce() is True
        assert packet.ecn is EcnCodepoint.CE


class TestRotatePacket:
    def test_rotate_packet_shape(self):
        packet = make_rotate_packet(port=3, last_rates={"top": 10.0})
        assert packet.ptype is PacketType.ROTATE
        assert packet.size_bytes == 0
        assert packet.meta["last_rates"] == {"top": 10.0}
        assert packet.flow.protocol == "cebinae"
