"""Tests for packets and flow identifiers."""

import subprocess
import sys

from repro.netsim.packet import (ACK_BYTES, HEADER_BYTES, MSS_BYTES,
                                 MTU_BYTES, EcnCodepoint, FlowId, Packet,
                                 PacketType, make_rotate_packet)


class TestFlowId:
    def test_equality_and_hash(self):
        a = FlowId(1, 2, 100, 80)
        b = FlowId(1, 2, 100, 80)
        assert a == b
        assert hash(a) == hash(b)

    def test_reversed_swaps_endpoints(self):
        flow = FlowId(1, 2, 100, 80)
        rev = flow.reversed()
        assert rev == FlowId(2, 1, 80, 100)
        assert rev.reversed() == flow

    def test_different_ports_differ(self):
        assert FlowId(1, 2, 100, 80) != FlowId(1, 2, 101, 80)

    def test_str_is_readable(self):
        assert str(FlowId(1, 2, 100, 80)) == "tcp:1:100->2:80"

    def test_usable_as_dict_key(self):
        table = {FlowId(1, 2, 3, 4): "x"}
        assert table[FlowId(1, 2, 3, 4)] == "x"


class TestLazyMeta:
    def _packet(self, **kwargs):
        return Packet(flow=FlowId(1, 2, 100, 80), size_bytes=MTU_BYTES,
                      **kwargs)

    def test_meta_allocates_lazily(self):
        packet = self._packet()
        assert not packet.has_meta
        packet.meta["tag"] = 7
        assert packet.has_meta
        assert packet.meta == {"tag": 7}

    def test_constructor_accepts_meta_kwarg(self):
        # The pre-lazy public API: Packet(..., meta={...}).
        packet = self._packet(meta={"tag": 7})
        assert packet.has_meta
        assert packet.meta == {"tag": 7}

    def test_constructor_meta_none_stays_lazy(self):
        assert not self._packet(meta=None).has_meta

    def test_meta_excluded_from_equality(self):
        # Annotations are bookkeeping, not header bits.
        assert self._packet(meta={"tag": 7}) == self._packet()


class TestStableHash:
    """FlowId.stable_hash backs deterministic cross-process replay.

    The builtin ``hash()`` of a tuple containing a string is salted
    with PYTHONHASHSEED, so anything derived from it (e.g. hashed
    queue assignment) would differ between a run and its replay in
    another process.  ``stable_hash`` must not.
    """

    def test_equal_flows_share_a_stable_hash(self):
        assert FlowId(1, 2, 100, 80).stable_hash() == \
            FlowId(1, 2, 100, 80).stable_hash()

    def test_distinct_flows_spread(self):
        hashes = {FlowId(1, 2, port, 80).stable_hash()
                  for port in range(64)}
        assert len(hashes) > 32  # crc32 spreads the five-tuple.

    def test_stable_across_hash_randomisation(self):
        # Same value under different PYTHONHASHSEED salts, i.e. in
        # fresh interpreters where builtin hash() would disagree.
        import os
        from pathlib import Path

        import repro
        src = str(Path(repro.__file__).resolve().parents[1])
        script = ("from repro.netsim.packet import FlowId; "
                  "print(FlowId(1, 2, 100, 80).stable_hash())")
        values = set()
        for seed in ("0", "1", "random"):
            env = dict(os.environ,
                       PYTHONPATH=src, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script], check=True,
                capture_output=True, text=True, env=env)
            values.add(int(out.stdout))
        assert len(values) == 1


class TestPacket:
    def test_size_constants(self):
        assert MTU_BYTES == MSS_BYTES + HEADER_BYTES
        assert ACK_BYTES < MSS_BYTES

    def test_defaults(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        assert packet.ptype is PacketType.DATA
        assert packet.ecn is EcnCodepoint.NOT_ECT
        assert not packet.ece and not packet.cwr

    def test_is_data_is_ack(self):
        data = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        ack = Packet(flow=FlowId(2, 1, 4, 3), size_bytes=64,
                     ptype=PacketType.ACK)
        assert data.is_data and not data.is_ack
        assert ack.is_ack and not ack.is_data


class TestEcnMarking:
    def test_not_ect_cannot_be_marked(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500)
        assert packet.mark_ce() is False
        assert packet.ecn is EcnCodepoint.NOT_ECT

    def test_ect0_marks_to_ce(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500,
                        ecn=EcnCodepoint.ECT0)
        assert packet.mark_ce() is True
        assert packet.ecn is EcnCodepoint.CE

    def test_ce_stays_ce(self):
        packet = Packet(flow=FlowId(1, 2, 3, 4), size_bytes=1500,
                        ecn=EcnCodepoint.CE)
        assert packet.mark_ce() is True
        assert packet.ecn is EcnCodepoint.CE


class TestRotatePacket:
    def test_rotate_packet_shape(self):
        packet = make_rotate_packet(port=3, last_rates={"top": 10.0})
        assert packet.ptype is PacketType.ROTATE
        assert packet.size_bytes == 0
        assert packet.meta["last_rates"] == {"top": 10.0}
        assert packet.flow.protocol == "cebinae"
