"""The fault-injection subsystem: specs, schedules, and degradation.

Three layers under test:

* the spec format (validation, JSON/CLI parsing, round-trips);
* the netsim-level fault machinery (per-link stochastic impairments,
  link down windows, node freezes) and its determinism contract — the
  same seed produces byte-identical ``ScenarioResult`` JSON across
  runs, scheduler backends, and the ``REPRO_DEBUG`` gate, while a
  fault-free run stays byte-identical to one with no fault subsystem
  involved at all;
* the Cebinae graceful-degradation semantics: a reconfiguration
  missing deadline ``L`` fails the port open to pass-through FIFO,
  counters surface through ``ScenarioResult.fault_summary``, and the
  agent re-converges once the outage clears.
"""

import dataclasses
import json

import pytest

from repro.analysis import invariants
from repro.analysis.invariants import InvariantViolation
from repro.core.control_plane import ControlPlaneSample
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import (Discipline, ScenarioResult,
                                      run_scenario)
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.faults.schedule import (ControlPlaneFaults, FaultSchedule,
                                   LinkFaultState, derive_seed)
from repro.faults.spec import (FaultSpec, merge_windows,
                               parse_fault_tokens)
from repro.netsim.engine import SECOND, Simulator, seconds
from repro.netsim.link import Link
from repro.netsim.node import Host, Router
from repro.netsim.queues import DropTailQueue

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="faulty", duration_s=2.0):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


def result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# -- the spec format ---------------------------------------------------------

class TestFaultSpec:
    def test_defaults_inject_nothing(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert not spec.link_faults_enabled
        assert not spec.control_plane_enabled

    @pytest.mark.parametrize("kwargs", [
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"corrupt_rate": "0.1"},
        {"loss_rate": 0.6, "corrupt_rate": 0.6},
        {"cp_delay_prob": 0.5},                   # needs cp_delay_max_ns
        {"reorder_rate": 0.1, "reorder_delay_ns": 0},
        {"link_down_windows": ((5, 5),)},
        {"link_down_windows": ((-1, 5),)},
        {"node_freeze_windows": (("", 1, 2),)},
        {"flap_count": -1},
        {"start_ns": -1},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises((InvariantViolation, ValueError)):
            FaultSpec(**kwargs)

    def test_active_window(self):
        spec = FaultSpec(start_ns=10, end_ns=20)
        assert not spec.active_at(9)
        assert spec.active_at(10)
        assert spec.active_at(19)
        assert not spec.active_at(20)
        open_ended = FaultSpec(start_ns=10)
        assert open_ended.active_at(10 ** 15)

    def test_round_trips_through_json(self):
        spec = FaultSpec(seed=9, loss_rate=0.01,
                         link_down_windows=((1, 5), (9, 12)),
                         node_freeze_windows=(("L", 3, 4),),
                         cp_outage_windows=((2, 6),),
                         cp_drop_prob=0.25)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert FaultSpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault-spec"):
            FaultSpec.from_dict({"loss_rte": 0.1})

    def test_scaled_zero_is_a_clean_baseline(self):
        spec = FaultSpec(seed=5, loss_rate=0.1, flap_count=3,
                         cp_drop_prob=0.2)
        baseline = spec.scaled(0)
        assert not baseline.enabled
        assert baseline.seed == 5

    def test_scaled_clamps_rates(self):
        spec = FaultSpec(loss_rate=0.4, corrupt_rate=0.4)
        doubled = spec.scaled(10)
        total = doubled.loss_rate + doubled.corrupt_rate
        assert total <= 1.0 + 1e-12
        assert doubled.loss_rate == pytest.approx(doubled.corrupt_rate)

    def test_merge_windows(self):
        assert merge_windows([(5, 9), (1, 3), (2, 4), (9, 11)]) == \
            ((1, 4), (5, 11))
        assert merge_windows([]) == ()


class TestFaultTokenParsing:
    def test_key_value_tokens(self):
        spec = parse_fault_tokens(["loss_rate=0.01", "seed=7",
                                   "link_pattern=L->R",
                                   "cp_fail_open=false",
                                   "end_ns=2e9"])
        assert spec.loss_rate == 0.01
        assert spec.seed == 7
        assert spec.link_pattern == "L->R"
        assert spec.cp_fail_open is False
        assert spec.end_ns == 2 * SECOND

    def test_window_tokens(self):
        spec = parse_fault_tokens(
            ["link_down_windows=1e9-2e9,3e9-4e9",
             "node_freeze_windows=L:5e8-6e8"])
        assert spec.link_down_windows == ((SECOND, 2 * SECOND),
                                          (3 * SECOND, 4 * SECOND))
        assert spec.node_freeze_windows == \
            (("L", 500_000_000, 600_000_000),)

    def test_json_file_then_overrides(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(
            FaultSpec(seed=3, loss_rate=0.5).to_dict()))
        spec = parse_fault_tokens([str(path), "seed=9"])
        assert spec.loss_rate == 0.5
        assert spec.seed == 9

    @pytest.mark.parametrize("token", [
        "bogus_key=1", "link_down_windows=5", "10e9.5",
        "node_freeze_windows=1-2",
    ])
    def test_bad_tokens_rejected(self, token, tmp_path):
        with pytest.raises((ValueError, OSError)):
            if "=" in token:
                parse_fault_tokens([token])
            else:
                parse_fault_tokens([str(tmp_path / token)])


# -- seeded streams ----------------------------------------------------------

class TestSeededStreams:
    def test_derive_seed_is_stable_across_processes(self):
        # Pinned value: SHA-256 is platform-independent, so a changed
        # constant here means the fault-replay contract broke.
        assert derive_seed(1, "link", "L->R") == \
            derive_seed(1, "link", "L->R")
        assert derive_seed(1, "link", "a") != derive_seed(1, "link", "b")
        assert derive_seed(1, "link", "a") != derive_seed(2, "link", "a")
        assert 0 <= derive_seed(0) < 2 ** 64

    def test_link_state_draw_counts_fates(self):
        spec = FaultSpec(loss_rate=0.3, corrupt_rate=0.3,
                         reorder_rate=0.3, reorder_delay_ns=1000)
        state = LinkFaultState(spec, seed=derive_seed(1, "t"))
        fates = [state.draw(0) for _ in range(500)]
        assert state.lost_packets == fates.count(-1) > 0
        assert state.corrupted_packets == fates.count(-2) > 0
        assert state.reordered_packets == \
            sum(1 for fate in fates if fate > 0) > 0
        assert all(fate <= 1000 for fate in fates)

    def test_draws_outside_window_are_free(self):
        spec = FaultSpec(loss_rate=1.0, start_ns=100, end_ns=200)
        state = LinkFaultState(spec, seed=1)
        assert state.draw(50) == 0
        assert state.lost_packets == 0
        assert state.draw(150) == -1

    def test_control_plane_outage_beats_probability(self):
        spec = FaultSpec(cp_outage_windows=((100, 200),))
        faults = ControlPlaneFaults(spec, seed=1)
        assert faults.draw(150) == (True, 0)
        assert faults.draw(250) == (False, 0)
        assert faults.summary()["rounds"] == 2
        assert faults.summary()["deadline_misses"] == 1


# -- netsim integration ------------------------------------------------------

def _two_hosts():
    sim = Simulator()
    a = Host(sim, 0, "a")
    b = Host(sim, 1, "b")
    link = Link(sim, a, b, rate_bps=8e6, delay_ns=1000,
                queue=DropTailQueue(limit_packets=100), name="a->b")
    a.attach_link(link)
    a.routes[1] = link
    return sim, a, b, link

def _packet(flow_src=0, flow_dst=1, size=100):
    from repro.netsim.packet import FlowId, Packet
    return Packet(flow=FlowId(flow_src, flow_dst, 1, 1), size_bytes=size)


class TestLinkFaults:
    def test_down_link_cuts_in_flight_packets(self):
        sim, a, b, link = _two_hosts()
        received = []
        b.set_default_handler(received.append)
        state = LinkFaultState(FaultSpec(), seed=1)
        link.set_fault_state(state)
        a.send(_packet())
        link.set_up(False)
        sim.run()
        assert received == []
        assert state.down_drops == 1

    def test_restore_drains_the_backlog(self):
        sim, a, b, link = _two_hosts()
        received = []
        b.set_default_handler(received.append)
        link.set_up(False)
        for _ in range(3):
            a.send(_packet())
        sim.run()
        assert received == []           # Buffered, not delivered.
        link.set_up(True)
        sim.run()
        assert len(received) == 3       # The restoration burst.

    def test_total_loss_blackholes_the_window(self):
        sim, a, b, link = _two_hosts()
        received = []
        b.set_default_handler(received.append)
        state = LinkFaultState(FaultSpec(loss_rate=1.0), seed=1)
        link.set_fault_state(state)
        a.send(_packet())
        sim.run()
        assert received == []
        assert state.lost_packets == 1
        link.set_fault_state(None)      # Clearing restores delivery.
        a.send(_packet())
        sim.run()
        assert len(received) == 1

    def test_frozen_node_drops_and_restarts(self):
        sim, a, b, link = _two_hosts()
        received = []
        b.set_default_handler(received.append)
        b.set_frozen(True)
        a.send(_packet())
        sim.run()
        assert received == []
        assert b.frozen_drops == 1
        b.set_frozen(False)
        a.send(_packet())
        sim.run()
        assert len(received) == 1

    def test_frozen_host_refuses_to_send(self):
        sim, a, b, link = _two_hosts()
        a.set_frozen(True)
        assert a.send(_packet()) is False
        assert a.frozen_drops == 1

    def test_schedule_installs_by_pattern(self):
        sim, a, b, link = _two_hosts()
        schedule = FaultSchedule(
            FaultSpec(loss_rate=0.5, link_pattern="a->*",
                      link_down_windows=((1000, 2000),),
                      node_freeze_windows=(("b", 500, 700),)),
            sim)
        schedule.install([link], [a, b], duration_ns=10_000)
        assert link.fault_state is not None
        sim.run()
        kinds = [event.kind for event in schedule.timeline]
        assert kinds == ["node_freeze", "node_restart", "link_down",
                         "link_up"]
        summary = schedule.summary()
        assert summary["links"]["a->b"]["down_windows"] == [[1000, 2000]]
        assert "b" in summary["nodes"]
        assert json.loads(json.dumps(summary)) == summary

    def test_mismatched_pattern_leaves_link_clean(self):
        sim, a, b, link = _two_hosts()
        schedule = FaultSchedule(
            FaultSpec(loss_rate=0.5, link_pattern="nope-*"), sim)
        schedule.install([link], [a, b], duration_ns=10_000)
        assert link.fault_state is None
        assert schedule.summary()["links"] == {}


# -- scenario-level determinism ---------------------------------------------

DEMO_FAULTS = FaultSpec(seed=7, loss_rate=0.001, link_pattern="L->R",
                        cp_outage_windows=((600_000_000,
                                            1_200_000_000),))


class TestScenarioDeterminism:
    def test_fault_free_run_is_byte_identical_to_no_fault_subsystem(self):
        plain = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                             collect_series=True, record_history=True)
        disabled = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                                collect_series=True, record_history=True,
                                faults=FaultSpec(seed=99))
        assert result_json(plain) == result_json(disabled)
        assert "fault_summary" not in plain.to_dict()
        assert "degraded" not in plain.to_dict()["cp_history"][0]

    def test_same_fault_seed_reproduces_byte_identically(self):
        first = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                             faults=DEMO_FAULTS, collect_series=True,
                             record_history=True)
        second = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                              faults=DEMO_FAULTS, collect_series=True,
                              record_history=True)
        assert result_json(first) == result_json(second)

    def test_fault_seed_changes_the_run(self):
        first = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                             faults=DEMO_FAULTS)
        reseeded = run_scenario(
            tiny_scaled(), Discipline.CEBINAE,
            faults=dataclasses.replace(DEMO_FAULTS, seed=8))
        assert result_json(first) != result_json(reseeded)

    def test_faulted_run_matches_across_backends_and_debug(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        monkeypatch.setattr(invariants, "DEBUG", True)
        reference = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                                 faults=DEMO_FAULTS, collect_series=True,
                                 record_history=True)
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        monkeypatch.setattr(invariants, "DEBUG", False)
        fast_path = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                                 faults=DEMO_FAULTS, collect_series=True,
                                 record_history=True)
        assert result_json(fast_path) == result_json(reference)

    def test_fault_summary_round_trips_through_json(self):
        result = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                              faults=DEMO_FAULTS, record_history=True)
        rebuilt = ScenarioResult.from_dict(
            json.loads(result_json(result)))
        assert result_json(rebuilt) == result_json(result)
        assert rebuilt.fault_summary == result.fault_summary


# -- graceful degradation ----------------------------------------------------

class TestGracefulDegradation:
    def test_outage_triggers_fail_open_and_recovery(self):
        result = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                              faults=DEMO_FAULTS, record_history=True)
        cp = result.fault_summary["control_plane"]
        assert cp["deadline_misses"] > 0
        assert cp["failopen_rounds"] == cp["deadline_misses"]
        assert cp["dropped_reconfigs"] == cp["deadline_misses"]
        assert cp["failopen_enqueues"] > 0
        assert cp["rounds"] > cp["deadline_misses"]  # It recovered.
        assert any(sample.degraded for sample in result.cp_history)
        # Degradation is transient: the last recompute is clean again.
        assert not result.cp_history[-1].degraded

    def test_no_fail_open_applies_stale_config_late(self):
        delayed = dataclasses.replace(
            DEMO_FAULTS, cp_outage_windows=(), cp_fail_open=False,
            cp_delay_prob=1.0, cp_delay_max_ns=1_000_000)
        result = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                              faults=delayed, record_history=True)
        cp = result.fault_summary["control_plane"]
        assert cp["deadline_misses"] > 0
        assert cp["failopen_rounds"] == 0
        assert cp["dropped_reconfigs"] == 0
        # Late applies still keep the control loop recomputing.
        assert result.cp_history

    def test_dropped_reconfig_without_fail_open_is_skipped(self):
        lost = dataclasses.replace(DEMO_FAULTS, cp_fail_open=False)
        result = run_scenario(tiny_scaled(), Discipline.CEBINAE,
                              faults=lost, record_history=True)
        cp = result.fault_summary["control_plane"]
        assert cp["dropped_reconfigs"] > 0
        assert cp["failopen_rounds"] == 0

    def test_degraded_sample_survives_json(self):
        sample = ControlPlaneSample(time_ns=1, utilization=0.5,
                                    saturated=True, degraded=True)
        assert sample.to_dict()["degraded"] is True
        assert ControlPlaneSample.from_dict(sample.to_dict()) == sample
        clean = ControlPlaneSample(time_ns=1, utilization=0.5,
                                   saturated=True)
        assert "degraded" not in clean.to_dict()
        assert ControlPlaneSample.from_dict(clean.to_dict()) == clean


# -- cache keys --------------------------------------------------------------

class TestFaultFingerprints:
    def test_fault_spec_changes_the_fingerprint(self):
        base = RunSpec(tiny_scaled(), Discipline.CEBINAE)
        faulted = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                          faults=DEMO_FAULTS)
        reseeded = RunSpec(
            tiny_scaled(), Discipline.CEBINAE,
            faults=dataclasses.replace(DEMO_FAULTS, seed=8))
        assert base.fingerprint() != faulted.fingerprint()
        assert faulted.fingerprint() != reseeded.fingerprint()

    def test_watchdog_knobs_do_not_change_the_fingerprint(self):
        base = RunSpec(tiny_scaled(), Discipline.CEBINAE)
        guarded = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                          wall_limit_s=10.0, max_events=10 ** 9)
        assert base.fingerprint() == guarded.fingerprint()

    def test_faulted_label_is_distinct(self):
        base = RunSpec(tiny_scaled(), Discipline.CEBINAE)
        faulted = RunSpec(tiny_scaled(), Discipline.CEBINAE,
                          faults=DEMO_FAULTS)
        reseeded = RunSpec(
            tiny_scaled(), Discipline.CEBINAE,
            faults=dataclasses.replace(DEMO_FAULTS, seed=8))
        assert base.label != faulted.label
        assert faulted.label != reseeded.label
