"""The middle of the chain: launders the clock read through a helper."""

from .clocks import jitter


def mixed_delay():
    return int(jitter() * 10) + 5
