"""The taint source: a host-clock read two calls away from the sink."""

import time


def jitter():
    return time.monotonic()
