"""Fixture: a source->sink determinism-taint chain across modules."""
