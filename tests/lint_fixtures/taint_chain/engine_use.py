"""The sink: feeds a helper-derived value into the scheduler."""

from .helpers import mixed_delay


def drive(sim):
    delay_ns = mixed_delay()
    sim.schedule(delay_ns, print)
