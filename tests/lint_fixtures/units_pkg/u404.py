"""U404: float contamination reaching ns slots through dataflow."""


def bad_float_flow(base_ns):
    scaled = base_ns * 1.5
    carried = scaled
    deadline_ns = carried  # must flag: float since the scaling line
    return deadline_ns


def ok_laundered(base_ns):
    scaled = int(base_ns * 1.5)
    deadline_ns = scaled
    return deadline_ns
