"""U401: arithmetic/comparison between incompatible dimensions."""

SECOND = 1_000_000_000


def bad_add(delay_ns, timeout_s):
    return delay_ns + timeout_s  # must flag: ns + s


def bad_compare(deadline_ns, budget_s):
    return deadline_ns < budget_s  # must flag: ns vs s


def ok_scaled(delay_ns, timeout_s):
    return delay_ns + timeout_s * SECOND  # scale factor converts


def ok_same_dim(a_ns, b_ns):
    return a_ns + b_ns
