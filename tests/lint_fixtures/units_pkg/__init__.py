"""Fixture package: one module per U4xx rule."""
