"""Annotated callees for the cross-module call-site checks."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.units import Seconds, TimeNs


def hold_for(duration_ns: TimeNs) -> TimeNs:
    return duration_ns


def as_seconds(value_ns: TimeNs) -> Seconds:
    return value_ns / 1_000_000_000
