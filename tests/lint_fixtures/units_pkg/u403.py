"""U403: bytes vs bits without the x8 conversion."""

SECOND = 1_000_000_000


def bad_rate(size_bytes, rate_bps):
    return size_bytes / rate_bps  # must flag: missing x8


def ok_rate(size_bytes, rate_bps):
    return size_bytes * 8 * SECOND / rate_bps  # canonical idiom


def ok_prescaled(size_bits, rate_bps):
    return size_bits / rate_bps
