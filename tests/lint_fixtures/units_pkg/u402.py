"""U402: dimension mismatch through assignments and call sites."""

from .sigs import hold_for


def bad_flow(timeout_s):
    pending = timeout_s
    deadline_ns = pending  # must flag: s value into ns name
    return deadline_ns


def bad_call(timeout_s):
    wait = timeout_s
    return hold_for(wait)  # must flag: s value into TimeNs param


def ok_flow(timeout_ns):
    pending = timeout_ns
    deadline_ns = pending
    return deadline_ns
