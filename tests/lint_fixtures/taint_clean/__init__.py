"""Fixture: a suppressed source must not seed taint."""
