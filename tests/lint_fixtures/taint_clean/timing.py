"""Same shape as taint_chain, but the source is triaged inline."""

import time


def wall_elapsed():
    # Host-side progress timing, never enters simulation state.
    return time.monotonic()  # simlint: allow[D103] host-side progress timing only


def drive(sim):
    elapsed = wall_elapsed()
    sim.schedule(1000, print, elapsed)
