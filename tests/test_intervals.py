"""Tests for the SACK interval set."""

import pytest
from hypothesis import given, strategies as st

from repro.tcp.intervals import IntervalSet


class TestBasics:
    def test_empty(self):
        ranges = IntervalSet()
        assert not ranges
        assert len(ranges) == 0
        assert ranges.total_bytes == 0
        assert ranges.max_end == 0

    def test_single_range(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        assert list(ranges) == [(10, 20)]
        assert ranges.total_bytes == 10
        assert ranges.max_end == 20

    def test_invalid_range_rejected(self):
        ranges = IntervalSet()
        with pytest.raises(ValueError):
            ranges.add(10, 10)
        with pytest.raises(ValueError):
            ranges.add(10, 5)

    def test_disjoint_ranges_sorted(self):
        ranges = IntervalSet()
        ranges.add(30, 40)
        ranges.add(10, 20)
        assert list(ranges) == [(10, 20), (30, 40)]


class TestMerging:
    def test_overlap_merges(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.add(15, 30)
        assert list(ranges) == [(10, 30)]

    def test_touching_merges(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.add(20, 30)
        assert list(ranges) == [(10, 30)]

    def test_bridge_merges_three(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.add(30, 40)
        ranges.add(15, 35)
        assert list(ranges) == [(10, 40)]

    def test_contained_range_noop(self):
        ranges = IntervalSet()
        ranges.add(10, 40)
        ranges.add(20, 30)
        assert list(ranges) == [(10, 40)]


class TestQueries:
    def make(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.add(30, 40)
        return ranges

    def test_contains(self):
        ranges = self.make()
        assert ranges.contains(10, 20)
        assert ranges.contains(12, 18)
        assert not ranges.contains(15, 25)
        assert not ranges.contains(25, 28)
        assert ranges.contains(5, 5)  # Empty range trivially covered.

    def test_covers_point(self):
        ranges = self.make()
        assert ranges.covers_point(10)
        assert ranges.covers_point(19)
        assert not ranges.covers_point(20)  # Half-open.
        assert not ranges.covers_point(25)

    def test_first_gap(self):
        ranges = self.make()
        assert ranges.first_gap_at_or_after(0) == 0
        assert ranges.first_gap_at_or_after(10) == 20
        assert ranges.first_gap_at_or_after(35) == 40
        assert ranges.first_gap_at_or_after(50) == 50

    def test_first_gap_chains_through_touching(self):
        ranges = IntervalSet()
        ranges.add(0, 10)
        ranges.add(10, 20)  # Merged.
        assert ranges.first_gap_at_or_after(0) == 20

    def test_first_blocks(self):
        ranges = self.make()
        ranges.add(50, 60)
        assert ranges.first_blocks(2) == [(10, 20), (30, 40)]


class TestPruning:
    def test_prune_below_drops_and_trims(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.add(30, 40)
        ranges.prune_below(35)
        assert list(ranges) == [(35, 40)]

    def test_prune_below_everything(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.prune_below(100)
        assert not ranges

    def test_clear(self):
        ranges = IntervalSet()
        ranges.add(10, 20)
        ranges.clear()
        assert not ranges


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.integers(1, 50)),
                    min_size=1, max_size=60))
    def test_matches_naive_set_model(self, raw):
        """The interval set behaves exactly like a set of covered
        byte indices."""
        ranges = IntervalSet()
        model = set()
        for start, length in raw:
            ranges.add(start, start + length)
            model.update(range(start, start + length))
        assert ranges.total_bytes == len(model)
        assert ranges.max_end == max(model) + 1
        # Ranges are disjoint, sorted, and non-adjacent.
        previous_end = None
        for start, end in ranges:
            assert start < end
            if previous_end is not None:
                assert start > previous_end
            previous_end = end
        # Point queries agree with the model on a sample.
        for point in list(model)[:20]:
            assert ranges.covers_point(point)
        assert not ranges.covers_point(max(model) + 1)

    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.integers(1, 40)),
                    min_size=1, max_size=40),
           st.integers(0, 600))
    def test_prune_matches_model(self, raw, cutoff):
        ranges = IntervalSet()
        model = set()
        for start, length in raw:
            ranges.add(start, start + length)
            model.update(range(start, start + length))
        ranges.prune_below(cutoff)
        model = {p for p in model if p >= cutoff}
        assert ranges.total_bytes == len(model)

    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.integers(1, 40)),
                    min_size=1, max_size=40),
           st.integers(0, 600))
    def test_first_gap_matches_model(self, raw, point):
        ranges = IntervalSet()
        model = set()
        for start, length in raw:
            ranges.add(start, start + length)
            model.update(range(start, start + length))
        expected = point
        while expected in model:
            expected += 1
        assert ranges.first_gap_at_or_after(point) == expected
