"""Coverage for behaviours not exercised elsewhere: flow wiring, the
CCA registry, engine stepping, monitors, cache configuration plumbing,
and cross-cutting properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.control_plane import cebinae_factory
from repro.core.params import CebinaeParams
from repro.core.queue_disc import CebinaeQueueDisc
from repro.heavyhitter.hashpipe import CebinaeFlowCache, ExactFlowCache
from repro.netsim.engine import MILLISECOND, Simulator, seconds
from repro.netsim.packet import MSS_BYTES, FlowId
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import PortSpec, build_dumbbell
from repro.netsim.tracing import FlowMonitor, FlowRecord
from repro.tcp.bbr import Bbr
from repro.tcp.cca import CongestionControl
from repro.tcp.cubic import Bic, Cubic
from repro.tcp.flows import (CCA_REGISTRY, connect_flow, expand_mix,
                             make_cca)
from repro.tcp.newreno import NewReno
from repro.tcp.vegas import Vegas


class TestCcaRegistry:
    def test_all_paper_ccas_present(self):
        assert set(CCA_REGISTRY) == {"newreno", "cubic", "bic",
                                     "vegas", "bbr"}

    @pytest.mark.parametrize("name,cls", [
        ("newreno", NewReno), ("cubic", Cubic), ("bic", Bic),
        ("vegas", Vegas), ("bbr", Bbr)])
    def test_make_cca_types(self, name, cls):
        assert isinstance(make_cca(name), cls)

    def test_make_cca_case_insensitive(self):
        assert isinstance(make_cca("BBR"), Bbr)

    def test_unknown_cca_lists_known(self):
        with pytest.raises(ValueError) as err:
            make_cca("quic")
        assert "newreno" in str(err.value)

    def test_instances_are_fresh(self):
        assert make_cca("cubic") is not make_cca("cubic")

    def test_registry_names_match_class_attribute(self):
        for name, cls in CCA_REGISTRY.items():
            assert cls.name == name


class TestExpandMix:
    def test_order_preserved(self):
        assert expand_mix([("vegas", 2), ("newreno", 1)]) == \
            ["vegas", "vegas", "newreno"]

    def test_zero_count_allowed(self):
        assert expand_mix([("vegas", 0), ("bbr", 1)]) == ["bbr"]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expand_mix([("vegas", -1)])


class TestConnectFlow:
    def test_deferred_start(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(
                                      limit_packets=100),
                                  sim=sim, tx_jitter_ns=0)
        flow = connect_flow(dumbbell.senders[0], dumbbell.receivers[0],
                            "newreno", start_time_ns=seconds(1))
        sim.run(until_ns=seconds(0.5))
        assert not flow.sender.started
        assert flow.sender.sent_segments == 0
        sim.run(until_ns=seconds(2))
        assert flow.sender.started
        assert flow.receiver.delivered_bytes > 0

    def test_goodput_bytes_property(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(
                                      limit_packets=100),
                                  sim=sim, tx_jitter_ns=0)
        flow = connect_flow(dumbbell.senders[0], dumbbell.receivers[0],
                            "newreno", max_bytes=10 * MSS_BYTES)
        sim.run(until_ns=seconds(2))
        assert flow.goodput_bytes == 10 * MSS_BYTES


class TestEngineStepping:
    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(20, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert fired == ["a", "b"]
        assert not sim.step()

    def test_peek_returns_next_time(self):
        sim = Simulator()
        sim.schedule(42, lambda: None)
        assert sim.peek_time_ns() == 42

    def test_peek_empty(self):
        assert Simulator().peek_time_ns() is None

    def test_now_seconds(self):
        sim = Simulator()
        sim.run(until_ns=seconds(1.5))
        assert sim.now_seconds == pytest.approx(1.5)


class TestFlowRecord:
    def test_zero_duration_goodput(self):
        record = FlowRecord(FlowId(1, 2, 3, 4))
        assert record.goodput_bps(0) == 0.0

    def test_first_last_delivery_stamps(self):
        sim = Simulator()
        monitor = FlowMonitor(sim)
        flow = FlowId(1, 2, 3, 4)
        sim.schedule(seconds(1), monitor.on_delivered, flow, 100)
        sim.schedule(seconds(3), monitor.on_delivered, flow, 100)
        sim.run()
        record = monitor.records[flow]
        assert record.first_delivery_ns == seconds(1)
        assert record.last_delivery_ns == seconds(3)


class TestCacheConfigPlumbing:
    def make_qdisc(self, **overrides):
        sim = Simulator()
        params = CebinaeParams(dt_ns=200 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                               **overrides)
        return CebinaeQueueDisc(sim, params, 8e6, 90_000)

    def test_exact_cache_selected(self):
        qdisc = self.make_qdisc(use_exact_cache=True)
        assert isinstance(qdisc.cache, ExactFlowCache)

    def test_hashpipe_dimensions_forwarded(self):
        qdisc = self.make_qdisc(cache_stages=3, cache_slots=64)
        assert isinstance(qdisc.cache, CebinaeFlowCache)
        assert qdisc.cache.stages == 3
        assert qdisc.cache.slots_per_stage == 64

    def test_factory_spec_name_used(self):
        sim = Simulator()
        factory = cebinae_factory(buffer_mtus=60)
        qdisc = factory(PortSpec(sim=sim, rate_bps=8e6, delay_ns=0,
                                 name="L->R"))
        assert qdisc.name == "L->R"


class TestBaseCca:
    def test_fixed_window_never_changes(self):
        from repro.tcp.cca import AckContext
        cca = CongestionControl()
        before = cca.cwnd_bytes
        cca.on_ack(AckContext(acked_bytes=MSS_BYTES, ack_seq=0,
                              rtt_ns=1, now_ns=0, in_flight_bytes=0,
                              snd_nxt=0))
        assert cca.cwnd_bytes == before

    def test_clamp_floor(self):
        cca = CongestionControl()
        cca.cwnd_bytes = 1.0
        cca.clamp()
        assert cca.cwnd_bytes == 2 * cca.mss

    def test_default_pacing_is_none(self):
        assert CongestionControl().pacing_rate_bps() is None

    def test_repr_mentions_cwnd(self):
        assert "cwnd" in repr(NewReno())


class TestCrossCuttingProperties:
    @given(st.lists(st.tuples(st.integers(0, 5),
                              st.sampled_from([64, 600, 1500])),
                    min_size=1, max_size=120))
    def test_cebinae_qdisc_byte_accounting(self, operations):
        """Random enqueue/dequeue interleavings keep the queue's byte
        and packet accounting exact."""
        sim = Simulator()
        params = CebinaeParams(dt_ns=200 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                               use_exact_cache=True)
        qdisc = CebinaeQueueDisc(sim, params, 8e6, 90_000)
        from repro.netsim.packet import Packet
        expected_bytes = 0
        expected_count = 0
        for port, size in operations:
            if port == 0 and expected_count:
                packet = qdisc.dequeue()
                if packet is not None:
                    expected_bytes -= packet.size_bytes
                    expected_count -= 1
            else:
                packet = Packet(flow=FlowId(1, 2, port, 80),
                                size_bytes=size)
                if qdisc.enqueue(packet):
                    expected_bytes += size
                    expected_count += 1
        assert qdisc.byte_length == expected_bytes
        assert len(qdisc) == expected_count

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    def test_rtt_estimator_rto_bounds(self, first_us, second_us):
        from repro.tcp.socket import (MAX_RTO_NS, MIN_RTO_NS,
                                      RttEstimator)
        est = RttEstimator()
        est.observe(first_us * 1000)
        est.observe(second_us * 1000)
        assert MIN_RTO_NS <= est.rto_ns <= MAX_RTO_NS

    @given(st.tuples(st.integers(0, 100), st.integers(0, 100),
                     st.integers(1, 65535), st.integers(1, 65535)))
    def test_flowid_reversal_involution(self, parts):
        flow = FlowId(*parts)
        assert flow.reversed().reversed() == flow
