"""Unit tests for NewReno window arithmetic."""

import pytest

from repro.netsim.packet import MSS_BYTES
from repro.tcp.cca import (INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS,
                           AckContext)
from repro.tcp.newreno import NewReno


def ack(cca, acked=MSS_BYTES, rtt_ns=10_000_000, now_ns=0,
        in_recovery=False):
    cca.on_ack(AckContext(acked_bytes=acked, ack_seq=0, rtt_ns=rtt_ns,
                          now_ns=now_ns, in_flight_bytes=0,
                          snd_nxt=0, in_recovery=in_recovery))


class TestSlowStart:
    def test_initial_window(self):
        cca = NewReno()
        assert cca.cwnd_bytes == INITIAL_CWND_SEGMENTS * MSS_BYTES
        assert cca.in_slow_start

    def test_grows_one_mss_per_acked_mss(self):
        cca = NewReno()
        before = cca.cwnd_bytes
        ack(cca)
        assert cca.cwnd_bytes == before + MSS_BYTES

    def test_abc_caps_growth_per_ack(self):
        cca = NewReno()
        before = cca.cwnd_bytes
        ack(cca, acked=10 * MSS_BYTES)
        assert cca.cwnd_bytes == before + MSS_BYTES


class TestCongestionAvoidance:
    def test_linear_growth_after_ssthresh(self):
        cca = NewReno()
        cca.ssthresh_bytes = cca.cwnd_bytes  # Exit slow start.
        before = cca.cwnd_bytes
        # One window's worth of ACKs grows cwnd by about one MSS.
        acks = int(before / MSS_BYTES)
        for _ in range(acks):
            ack(cca)
        assert cca.cwnd_bytes == pytest.approx(before + MSS_BYTES,
                                               rel=0.05)

    def test_no_growth_during_recovery(self):
        cca = NewReno()
        before = cca.cwnd_bytes
        ack(cca, in_recovery=True)
        assert cca.cwnd_bytes == before


class TestMultiplicativeDecrease:
    def test_halves_on_recovery(self):
        cca = NewReno()
        cca.cwnd_bytes = 100 * MSS_BYTES
        cca.on_enter_recovery(in_flight_bytes=100 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(50 * MSS_BYTES)
        assert cca.ssthresh_bytes == pytest.approx(50 * MSS_BYTES)

    def test_floor_of_two_segments(self):
        cca = NewReno()
        cca.cwnd_bytes = 2 * MSS_BYTES
        cca.on_enter_recovery(in_flight_bytes=2 * MSS_BYTES, now_ns=0)
        assert cca.cwnd_bytes >= MIN_CWND_SEGMENTS * MSS_BYTES

    def test_rto_collapses_to_one_segment(self):
        cca = NewReno()
        cca.cwnd_bytes = 100 * MSS_BYTES
        cca.on_retransmit_timeout(in_flight_bytes=100 * MSS_BYTES,
                                  now_ns=0)
        assert cca.cwnd_bytes == MSS_BYTES
        assert cca.ssthresh_bytes == pytest.approx(50 * MSS_BYTES)

    def test_exit_recovery_restores_ssthresh(self):
        cca = NewReno()
        cca.cwnd_bytes = 80 * MSS_BYTES
        cca.on_enter_recovery(80 * MSS_BYTES, now_ns=0)
        cca.on_exit_recovery(now_ns=0)
        assert cca.cwnd_bytes == cca.ssthresh_bytes


class TestEcnReaction:
    def test_ecn_acts_like_loss(self):
        cca = NewReno()
        cca.cwnd_bytes = 60 * MSS_BYTES
        cca.ssthresh_bytes = 10 * MSS_BYTES
        cca.on_ecn(now_ns=0)
        assert cca.cwnd_bytes == pytest.approx(30 * MSS_BYTES)
