"""Lifecycle spans: deterministic ids, zero-cost-off, tree validity."""

import json

import pytest

from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.netsim.engine import SECOND, Simulator
from repro.obs import bus as obs_bus
from repro.obs import spans
from repro.obs.events import canonical_dict, validate_record
from repro.obs.sinks import MemorySink, encode_record


@pytest.fixture(autouse=True)
def clean_stack():
    spans._STACK.clear()
    yield
    spans._STACK.clear()


def span_bus():
    bus = obs_bus.TraceBus()
    sink = MemorySink()
    bus.subscribe("span", sink)
    return bus, sink


def tiny_scaled(duration_s=2.0):
    spec = ScenarioSpec(name="spans", rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6).apply(spec)


class TestSpanIds:
    def test_derive_is_deterministic(self):
        one = spans.derive_span_id("", "run", "figure9", 0)
        two = spans.derive_span_id("", "run", "figure9", 0)
        assert one == two
        assert len(one) == spans.SPAN_ID_HEX

    def test_derive_depends_on_position(self):
        base = spans.derive_span_id("p", "phase", "warmup", 0)
        assert spans.derive_span_id("p", "phase", "warmup", 1) != base
        assert spans.derive_span_id("q", "phase", "warmup", 0) != base
        assert spans.derive_span_id("p", "task", "warmup", 0) != base
        assert spans.derive_span_id("p", "phase", "drain", 0) != base


class TestZeroCostOff:
    def test_open_span_returns_none_without_bus(self):
        assert not spans.enabled()
        assert spans.open_span("run", "x") is None
        assert spans.current_id() == ""

    def test_context_manager_yields_none_without_bus(self):
        with spans.span("run", "x") as handle:
            assert handle is None
        assert spans._STACK == []

    def test_bus_without_span_subscriber_stays_off(self):
        bus = obs_bus.TraceBus()
        bus.subscribe("control", MemorySink())
        with obs_bus.tracing(bus):
            assert not spans.enabled()
            assert spans.open_span("run", "x") is None


class TestOpenClose:
    def test_parent_child_linkage_and_tree(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            outer = spans.open_span("sweep", "demo", sim_clock=False)
            inner = spans.open_span("task", "t0", sim_clock=False)
            assert spans.current_id() == inner.span_id
            inner.count = 1
            spans.close_span(inner)
            spans.close_span(outer)
        records = [json.loads(encode_record(r)) for r in sink.records]
        assert [r["kind"] for r in records] == ["task", "sweep"]
        for record in records:
            validate_record(record)
        tree = spans.span_tree(records)
        assert tree["roots"] == [outer.span_id]
        root = tree["nodes"][outer.span_id]
        assert root["children"] == [inner.span_id]
        assert tree["nodes"][inner.span_id]["count"] == 1

    def test_ids_stable_across_reruns(self):
        streams = []
        for _ in range(2):
            bus, sink = span_bus()
            with obs_bus.tracing(bus):
                with spans.span("run", "r", sim_clock=False):
                    with spans.span("phase", "warmup",
                                    sim_clock=False):
                        pass
                    with spans.span("phase", "drain", sim_clock=False):
                        pass
            streams.append([json.dumps(canonical_dict(
                json.loads(encode_record(r))), sort_keys=True)
                for r in sink.records])
        assert streams[0] == streams[1]

    def test_close_is_idempotent(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            handle = spans.open_span("run", "r", sim_clock=False)
            spans.close_span(handle)
            spans.close_span(handle)
        assert len(sink.records) == 1

    def test_closing_parent_pops_abandoned_children(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            outer = spans.open_span("sweep", "demo", sim_clock=False)
            spans.open_span("task", "orphan", sim_clock=False)
            spans.close_span(outer)
        assert spans._STACK == []
        assert [r.kind for r in sink.records] == ["sweep"]

    def test_context_manager_marks_errors(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            with pytest.raises(RuntimeError):
                with spans.span("run", "boom", sim_clock=False):
                    raise RuntimeError("boom")
        assert sink.records[-1].status == "error"
        assert spans._STACK == []

    def test_emit_leaf_claims_child_index(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            outer = spans.open_span("run", "r", sim_clock=False)
            emit = obs_bus.emitter_for("span")
            spans.emit_leaf(emit, "round", "control-round", 10, 0.5,
                            count=1)
            spans.emit_leaf(emit, "round", "control-round", 20, 0.5,
                            count=2)
            spans.close_span(outer)
        leaves = [r for r in sink.records if r.kind == "round"]
        assert len(leaves) == 2
        assert leaves[0].span_id != leaves[1].span_id
        assert all(leaf.parent_id == outer.span_id for leaf in leaves)


class TestSpanTree:
    def test_duplicate_id_rejected(self):
        record = {"type": "SpanEvent", "span_id": "a",
                  "parent_id": ""}
        with pytest.raises(ValueError, match="duplicate"):
            spans.span_tree([record, dict(record)])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            spans.span_tree([{"type": "SpanEvent", "span_id": "a",
                              "parent_id": "ghost"}])

    def test_non_span_records_ignored(self):
        tree = spans.span_tree([{"type": "PacketTx"}])
        assert tree == {"nodes": {}, "roots": []}


class TestProducers:
    def test_engine_emits_events_span(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            sim = Simulator()
            sim.schedule(SECOND, lambda: None)
            sim.run()
        engine = [r for r in sink.records if r.kind == "engine"]
        assert len(engine) == 1
        # Named for the role, not the scheduler class: the span stream
        # must be byte-identical across backends.
        assert engine[0].name == "events"
        assert engine[0].count >= 1
        assert engine[0].status == "ok"

    def test_scenario_emits_run_root_with_phases(self):
        bus, sink = span_bus()
        with obs_bus.tracing(bus):
            run_scenario(tiny_scaled(), Discipline.CEBINAE)
        records = [json.loads(encode_record(r)) for r in sink.records]
        tree = spans.span_tree(records)
        roots = [tree["nodes"][i] for i in tree["roots"]]
        runs = [n for n in roots if n["kind"] == "run"]
        assert len(runs) == 1
        phases = [tree["nodes"][c] for c in runs[0]["children"]
                  if tree["nodes"][c]["kind"] == "phase"]
        assert phases
        assert {n["name"] for n in phases} <= set(spans.RUN_PHASES)
        assert runs[0]["count"] > 0

    def test_scenario_span_stream_deterministic(self):
        streams = []
        for _ in range(2):
            bus, sink = span_bus()
            with obs_bus.tracing(bus):
                run_scenario(tiny_scaled(), Discipline.CEBINAE)
            streams.append([json.dumps(canonical_dict(
                json.loads(encode_record(r))), sort_keys=True)
                for r in sink.records])
        assert streams[0] == streams[1]
