"""Tests for host transmission jitter (phase-effect mitigation)."""

import pytest

from repro.netsim.engine import MICROSECOND, Simulator, seconds
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import FlowId, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import build_dumbbell, host_jitter_ns


def jittered_pair(sim, jitter_ns, seed=7):
    a = Host(sim, 0, "a")
    b = Host(sim, 1, "b")
    link = Link(sim, a, b, 100e6, 1000,
                DropTailQueue(limit_packets=1000))
    a.attach_link(link)
    a.routes[1] = link
    a.set_tx_jitter(jitter_ns, seed=seed)
    return a, b


def make_packet(seq):
    return Packet(flow=FlowId(0, 1, 5, 80), size_bytes=100, seq=seq)


class TestJitterSemantics:
    def test_order_preserved_within_host(self):
        sim = Simulator()
        a, b = jittered_pair(sim, jitter_ns=100 * MICROSECOND)
        received = []
        b.set_default_handler(lambda p: received.append(p.seq))
        for seq in range(50):
            a.send(make_packet(seq))
        sim.run()
        assert received == list(range(50))

    def test_jitter_delays_bounded(self):
        sim = Simulator()
        jitter = 100 * MICROSECOND
        a, b = jittered_pair(sim, jitter_ns=jitter)
        arrivals = []
        b.set_default_handler(lambda p: arrivals.append(sim.now_ns))
        a.send(make_packet(0))
        sim.run()
        base = 1000 + 8 * 1000  # Propagation + serialization of 100 B.
        assert base <= arrivals[0] <= base + jitter

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            a, b = jittered_pair(sim, 100 * MICROSECOND, seed=seed)
            arrivals = []
            b.set_default_handler(lambda p: arrivals.append(sim.now_ns))
            for seq in range(20):
                a.send(make_packet(seq))
            sim.run()
            return arrivals

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_zero_jitter_is_passthrough(self):
        sim = Simulator()
        a, b = jittered_pair(sim, jitter_ns=0)
        sent = []
        b.set_default_handler(lambda p: sent.append(sim.now_ns))
        a.send(make_packet(0))
        sim.run()
        assert sent[0] == 1000 + 8 * 1000

    def test_default_jitter_scale(self):
        # One MTU at 25 Mbps is 480 us.
        assert host_jitter_ns(25e6) == pytest.approx(480_000, rel=0.01)


class TestPhaseEffectMitigation:
    def test_drops_are_shared_with_jitter(self):
        """The motivating property: with jitter, both flows of a
        two-flow dumbbell see losses, instead of one absorbing all."""
        from repro.tcp.flows import connect_flow
        from repro.netsim.tracing import FlowMonitor

        def loss_split(jitter_ns):
            sim = Simulator()
            dumbbell = build_dumbbell(
                [seconds(0.02), seconds(0.04)], 10e6,
                lambda spec: DropTailQueue.from_mtu_count(40),
                sim=sim, tx_jitter_ns=jitter_ns)
            monitor = FlowMonitor(sim)
            flows = [connect_flow(dumbbell.senders[i],
                                  dumbbell.receivers[i], "newreno",
                                  monitor=monitor,
                                  src_port=10_000 + i)
                     for i in range(2)]
            sim.run(until_ns=seconds(20))
            return [flow.sender.retransmits for flow in flows]

        with_jitter = loss_split(host_jitter_ns(10e6))
        # Both flows experience loss events.
        assert min(with_jitter) > 0
