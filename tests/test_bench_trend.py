"""Benchmark trend folding and the shared normalised-ratio gate."""

import json

import pytest

from repro.experiments.bench_trend import (
    BASELINE_SCHEMA_VERSION, build_trend, compare, format_trend,
    load_bench_document, load_medians, main, normalised, report_main,
    write_baseline)


def write_pytest_bench(path, entries):
    path.write_text(json.dumps({"benchmarks": [
        {"name": name, **body} for name, body in entries.items()]}))
    return str(path)


class TestLoaders:
    def test_pytest_benchmark_shape(self, tmp_path):
        path = write_pytest_bench(tmp_path / "bench.json", {
            "engine_run": {"stats": {"median": 0.5},
                           "extra_info": {"events_per_s": 1e6,
                                          "tag": "hot",
                                          "flag": True}},
        })
        document = load_bench_document(path)
        assert document["medians"] == {"engine_run": 0.5}
        # Numeric non-bool extra_info only.
        assert document["metrics"] == {"engine_run.events_per_s": 1e6}

    def test_stats_less_benchmark_contributes_metrics_only(
            self, tmp_path):
        path = write_pytest_bench(tmp_path / "obs.json", {
            "obs_smoke": {"extra_info": {"records": 1200.0}},
        })
        document = load_bench_document(path)
        assert document["medians"] == {}
        assert document["metrics"] == {"obs_smoke.records": 1200.0}
        with pytest.raises(ValueError, match="no benchmarks"):
            load_medians(path)

    def test_baseline_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, {"b": 2.0, "a": 1.0})
        assert load_medians(path) == {"a": 1.0, "b": 2.0}
        data = json.loads(open(path).read())
        assert data["schema_version"] == BASELINE_SCHEMA_VERSION

    def test_baseline_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 99,
                                    "medians": {"a": 1.0}}))
        with pytest.raises(ValueError, match="schema_version"):
            load_medians(str(path))


class TestCompare:
    def test_relative_regression_flagged(self, capsys):
        baseline = {"a": 1.0, "b": 1.0}
        current = {"a": 1.0, "b": 2.0}    # b moved against its peer
        failures = compare(current, baseline, threshold=0.10)
        assert len(failures) == 1 and failures[0].startswith("b:")
        assert "REGRESSION" in capsys.readouterr().out

    def test_uniform_slowdown_cancels(self, capsys):
        baseline = {"a": 1.0, "b": 2.0}
        current = {"a": 3.0, "b": 6.0}    # slower machine, same shape
        assert compare(current, baseline, threshold=0.10) == []
        capsys.readouterr()

    def test_no_common_benchmarks(self):
        failures = compare({"a": 1.0}, {"b": 1.0}, threshold=0.10)
        assert failures and "common" in failures[0]

    def test_normalised_needs_positive_median(self):
        with pytest.raises(ValueError, match="positive"):
            normalised({"a": 0.0}, ["a"])


class TestBuildTrend:
    def test_folds_artifacts_and_flags(self, tmp_path, capsys):
        hot = write_pytest_bench(tmp_path / "hot.json", {
            "a": {"stats": {"median": 1.0}},
            "b": {"stats": {"median": 2.0}},
        })
        obs = write_pytest_bench(tmp_path / "obs.json", {
            "obs_smoke": {"extra_info": {"records": 10.0}},
        })
        baseline = str(tmp_path / "baseline.json")
        write_baseline(baseline, {"a": 1.0, "b": 1.0})
        document = build_trend(
            [hot, obs, str(tmp_path / "gone.json")],
            baseline_path=baseline)
        capsys.readouterr()
        assert document["sources"] == ["hot.json", "obs.json"]
        assert document["missing"] == ["gone.json"]
        rows = {row["name"]: row for row in document["rows"]}
        assert rows["a"]["flag"] == "ok"
        assert rows["b"]["flag"] == "REGRESSION"
        assert rows["b"]["source"] == "hot.json"
        assert document["regressions"] == ["b"]
        assert document["metrics"] == [{"name": "obs_smoke.records",
                                        "value": 10.0,
                                        "source": "obs.json"}]

    def test_without_baseline_everything_unbaselined(self, tmp_path):
        hot = write_pytest_bench(tmp_path / "hot.json", {
            "a": {"stats": {"median": 1.0}},
        })
        document = build_trend([hot])
        (row,) = document["rows"]
        assert row["flag"] == "unbaselined"
        assert row["normalised_ratio"] is None
        assert document["regressions"] == []

    def test_markdown_rendering(self, tmp_path, capsys):
        hot = write_pytest_bench(tmp_path / "hot.json", {
            "a": {"stats": {"median": 1.0}},
            "b": {"stats": {"median": 2.0}},
        })
        baseline = str(tmp_path / "baseline.json")
        write_baseline(baseline, {"a": 1.0, "b": 1.0})
        text = format_trend(build_trend([hot],
                                        baseline_path=baseline))
        capsys.readouterr()
        assert "| benchmark | median (s) |" in text
        assert "1 regression(s): b" in text


class TestReportMain:
    def artifacts(self, tmp_path):
        hot = write_pytest_bench(tmp_path / "hot.json", {
            "a": {"stats": {"median": 1.0}},
            "b": {"stats": {"median": 2.0}},
        })
        baseline = str(tmp_path / "baseline.json")
        write_baseline(baseline, {"a": 1.0, "b": 1.0})
        return hot, baseline

    def test_writes_artifacts_and_reports(self, tmp_path, capsys):
        hot, baseline = self.artifacts(tmp_path)
        out = tmp_path / "trend.json"
        markdown = tmp_path / "trend.md"
        assert report_main([hot, "--baseline", baseline,
                            "--out", str(out),
                            "--markdown", str(markdown)]) == 0
        assert "1 regression(s)" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["regressions"] == ["b"]
        assert "REGRESSION" in markdown.read_text()

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        hot, baseline = self.artifacts(tmp_path)
        assert report_main([hot, "--baseline", baseline,
                            "--gate"]) == 1
        capsys.readouterr()
        # A generous threshold swallows the movement.
        assert report_main([hot, "--baseline", baseline,
                            "--threshold", "2.0", "--gate"]) == 0
        capsys.readouterr()

    def test_bench_dispatcher(self, tmp_path, capsys):
        hot, _ = self.artifacts(tmp_path)
        assert main([]) == 2
        assert main(["nonsense"]) == 2
        assert main(["report", hot]) == 0
        capsys.readouterr()

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.experiments.cli import main as repro_main
        hot, _ = self.artifacts(tmp_path)
        assert repro_main(["bench", "report", hot]) == 0
        assert "| benchmark |" in capsys.readouterr().out
