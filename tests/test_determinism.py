"""Determinism as a contract: replay and parallel-vs-serial parity.

Parallel execution and result caching are only sound if a run is a
pure function of its parameters.  These tests pin that down: the same
scenario must produce bit-identical metrics on every execution, and
the process-pool path must reproduce the serial path field for field.
"""

import pytest

from repro.experiments.parallel import RunSpec, require, run_many
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="det", rtts=(20, 30), duration_s=2.0):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=rtts,
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


class TestInProcessReplay:
    @pytest.mark.parametrize("discipline", [Discipline.FIFO,
                                            Discipline.CEBINAE])
    def test_same_scenario_twice_is_identical(self, discipline):
        scaled = tiny_scaled()
        first = run_scenario(scaled, discipline, collect_series=True)
        second = run_scenario(scaled, discipline, collect_series=True)
        assert first.goodputs_bps == second.goodputs_bps
        assert first.events == second.events
        assert first.lbf_drops == second.lbf_drops
        assert first.goodput_series_bps == second.goodput_series_bps
        assert first == second

    def test_different_seeds_diverge(self):
        # The jitter RNG is part of the run's identity: distinct seeds
        # must give distinct (yet individually reproducible) runs.
        scaled = tiny_scaled()
        base = run_scenario(scaled, Discipline.FIFO, seed=0)
        replay = run_scenario(scaled, Discipline.FIFO, seed=0)
        other = run_scenario(scaled, Discipline.FIFO, seed=7)
        assert base == replay
        assert base.goodputs_bps != other.goodputs_bps


class TestParallelMatchesSerial:
    def test_run_many_with_four_workers_equals_serial(self):
        scaled_a = tiny_scaled(name="det_a")
        scaled_b = tiny_scaled(name="det_b", rtts=(24, 36))
        specs = [
            RunSpec(scaled_a, Discipline.FIFO, collect_series=True),
            RunSpec(scaled_a, Discipline.CEBINAE,
                    record_history=True),
            RunSpec(scaled_b, Discipline.FQ),
            RunSpec(scaled_b, Discipline.CEBINAE, seed=3),
        ]
        serial = [run_scenario(spec.scaled, spec.discipline,
                               collect_series=spec.collect_series,
                               record_history=spec.record_history,
                               seed=spec.seed)
                  for spec in specs]
        parallel = run_many(specs, workers=4, progress=None)
        assert len(parallel) == len(serial)
        for expected, actual in zip(serial, parallel):
            actual = require(actual)
            # Field-for-field: dataclass equality covers every field,
            # and the dict forms must agree too (the cache contract).
            assert actual == expected
            assert actual.to_dict() == expected.to_dict()

    def test_run_many_serial_path_equals_pool_path(self):
        scaled = tiny_scaled(name="det_c")
        specs = [RunSpec(scaled, d) for d in (Discipline.FIFO,
                                              Discipline.FQ)]
        pooled = [require(r) for r in
                  run_many(specs, workers=2, progress=None)]
        inline = [require(r) for r in
                  run_many(specs, workers=1, progress=None)]
        assert pooled == inline
