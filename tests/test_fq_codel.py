"""Tests for the FQ-CoDel baseline (DRR scheduler + CoDel AQM)."""

import pytest

from repro.netsim.engine import MILLISECOND, Simulator
from repro.netsim.fq_codel import (CODEL_INTERVAL_NS, CODEL_TARGET_NS,
                                   CoDelState, FqCoDelQueue, control_law)
from repro.netsim.packet import FlowId, Packet


def make_packet(flow_port, size=1000):
    return Packet(flow=FlowId(1, 2, flow_port, 80), size_bytes=size)


class TestControlLaw:
    def test_first_drop_interval(self):
        assert control_law(0, CODEL_INTERVAL_NS, 1) == CODEL_INTERVAL_NS

    def test_interval_shrinks_with_sqrt_count(self):
        t4 = control_law(0, CODEL_INTERVAL_NS, 4)
        assert t4 == CODEL_INTERVAL_NS // 2


class TestCoDelState:
    def test_below_target_is_ok(self):
        state = CoDelState()
        assert state.sojourn_ok(CODEL_TARGET_NS - 1, now_ns=0,
                                backlog_bytes=10_000)

    def test_small_backlog_is_always_ok(self):
        state = CoDelState()
        assert state.sojourn_ok(10 * CODEL_TARGET_NS, now_ns=0,
                                backlog_bytes=1000)

    def test_sustained_excess_trips_after_interval(self):
        state = CoDelState()
        assert state.sojourn_ok(2 * CODEL_TARGET_NS, now_ns=0,
                                backlog_bytes=10_000)
        assert not state.sojourn_ok(2 * CODEL_TARGET_NS,
                                    now_ns=CODEL_INTERVAL_NS + 1,
                                    backlog_bytes=10_000)

    def test_dip_below_target_resets(self):
        state = CoDelState()
        state.sojourn_ok(2 * CODEL_TARGET_NS, 0, 10_000)
        state.sojourn_ok(CODEL_TARGET_NS // 2,
                         CODEL_INTERVAL_NS // 2, 10_000)
        # The window restarts: no drop right after the dip.
        assert state.sojourn_ok(2 * CODEL_TARGET_NS,
                                CODEL_INTERVAL_NS + 1, 10_000)


class TestFqScheduling:
    def test_single_flow_fifo_order(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim)
        packets = [make_packet(1, size=100 * (i + 1)) for i in range(4)]
        for packet in packets:
            queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(4)] == packets

    def test_round_robin_between_flows(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim, quantum_bytes=1000)
        for _ in range(3):
            queue.enqueue(make_packet(1, size=1000))
            queue.enqueue(make_packet(2, size=1000))
        ports = [queue.dequeue().flow.src_port for _ in range(6)]
        # Each flow gets one quantum turn at a time.
        assert sorted(ports[:2]) == [1, 2]
        assert sorted(ports) == [1, 1, 1, 2, 2, 2]

    def test_drr_favours_small_packets_equally_by_bytes(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim, quantum_bytes=1000)
        # Flow 1 sends 1000-byte packets; flow 2 sends 500-byte packets.
        for _ in range(4):
            queue.enqueue(make_packet(1, size=1000))
        for _ in range(8):
            queue.enqueue(make_packet(2, size=500))
        taken = [queue.dequeue() for _ in range(12)]
        bytes_by_flow = {1: 0, 2: 0}
        for packet in taken[:6]:  # First half of the drain.
            bytes_by_flow[packet.flow.src_port] += packet.size_bytes
        # Byte-fair: roughly equal bytes served to both flows.
        assert abs(bytes_by_flow[1] - bytes_by_flow[2]) <= 1000

    def test_new_flow_gets_priority(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim, quantum_bytes=1000)
        for _ in range(5):
            queue.enqueue(make_packet(1, size=1000))
        queue.dequeue()  # Flow 1's quantum is spent.
        queue.enqueue(make_packet(2, size=1000))
        # At the next dequeue flow 1 rotates to the old list and the
        # newly arrived flow 2 is served first (RFC 8290 new-flow
        # priority).
        assert queue.dequeue().flow.src_port == 2
        assert queue.dequeue().flow.src_port == 1

    def test_empty_dequeue_returns_none(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim)
        assert queue.dequeue() is None

    def test_len_and_bytes_track(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim)
        queue.enqueue(make_packet(1, size=700))
        queue.enqueue(make_packet(2, size=300))
        assert len(queue) == 2
        assert queue.byte_length == 1000
        queue.dequeue()
        assert len(queue) == 1


class TestOverlimit:
    def test_drop_from_fattest_queue(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim, limit_packets=4)
        for _ in range(4):
            queue.enqueue(make_packet(1, size=1500))
        queue.enqueue(make_packet(2, size=100))
        # The fat flow (1) loses a packet; the thin flow's stays.
        assert queue.overlimit_drops == 1
        assert len(queue) == 4
        remaining_ports = []
        while True:
            packet = queue.dequeue()
            if packet is None:
                break
            remaining_ports.append(packet.flow.src_port)
        assert 2 in remaining_ports
        assert remaining_ports.count(1) == 3


class TestCoDelDropping:
    def test_standing_queue_gets_dropped(self):
        """A queue drained slower than it fills develops a standing
        queue; CoDel must start dropping after one interval."""
        sim = Simulator()
        queue = FqCoDelQueue(sim)
        for _ in range(100):
            queue.enqueue(make_packet(1, size=1500))
        drained = []

        def drain():
            packet = queue.dequeue()
            if packet is not None:
                drained.append(packet)
                sim.schedule(10 * MILLISECOND, drain)

        sim.schedule(10 * MILLISECOND, drain)
        sim.run()
        assert queue.codel_drops >= 1
        assert len(drained) + queue.codel_drops == 100

    def test_fresh_packets_not_dropped(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim)
        for _ in range(5):
            queue.enqueue(make_packet(1))
        drained = sum(1 for _ in range(5)
                      if queue.dequeue() is not None)
        assert drained == 5
        assert queue.codel_drops == 0


class TestHashedQueues:
    def test_num_queues_causes_collisions(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim, num_queues=1)
        queue.enqueue(make_packet(1))
        queue.enqueue(make_packet(2))
        # Both flows share the single bucket: strict FIFO between them.
        first = queue.dequeue()
        second = queue.dequeue()
        assert {first.flow.src_port, second.flow.src_port} == {1, 2}
        assert len(queue._queues) == 1

    def test_bucket_assignment_is_process_independent(self):
        # The bucket must come from FlowId.stable_hash, never from the
        # PYTHONHASHSEED-salted builtin hash(): hashed queue placement
        # feeds drops and goodputs, which must replay identically in
        # other processes (pool workers, cache validation re-runs).
        sim = Simulator()
        queue = FqCoDelQueue(sim, num_queues=32)
        for port in range(16):
            flow = FlowId(1, 2, port, 80)
            assert queue._bucket(flow) == flow.stable_hash() % 32

    def test_exact_mode_keeps_per_flow_queues(self):
        sim = Simulator()
        queue = FqCoDelQueue(sim)  # num_queues=None: exact FQ.
        flow = FlowId(1, 2, 7, 80)
        assert queue._bucket(flow) == flow
