"""Tests for links (timing, counters) and nodes (dispatch, routing)."""

import pytest

from repro.netsim.engine import SECOND, Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host, Router
from repro.netsim.packet import FlowId, Packet
from repro.netsim.queues import DropTailQueue


def wire(sim, rate_bps=8e6, delay_ns=1000, queue=None):
    """A host pair connected by one unidirectional link."""
    src = Host(sim, 0, "src")
    dst = Host(sim, 1, "dst")
    if queue is None:
        queue = DropTailQueue(limit_packets=100)
    link = Link(sim, src, dst, rate_bps, delay_ns, queue)
    src.attach_link(link)
    src.routes[1] = link
    return src, dst, link


def make_packet(size=1000, dst=1):
    return Packet(flow=FlowId(0, dst, 5, 80), size_bytes=size)


class TestLinkTiming:
    def test_serialization_delay(self):
        sim = Simulator()
        _, _, link = wire(sim, rate_bps=8e6)  # 1 byte per microsecond.
        assert link.serialization_delay_ns(1000) == 1_000_000

    def test_arrival_time_is_serialization_plus_propagation(self):
        sim = Simulator()
        src, dst, link = wire(sim, rate_bps=8e6, delay_ns=500_000)
        arrivals = []
        dst.set_default_handler(lambda p: arrivals.append(sim.now_ns))
        link.send(make_packet(size=1000))
        sim.run()
        # 1000 B at 8 Mbps = 1 ms serialization + 0.5 ms propagation.
        assert arrivals == [1_500_000]

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        src, dst, link = wire(sim, rate_bps=8e6, delay_ns=0)
        arrivals = []
        dst.set_default_handler(lambda p: arrivals.append(sim.now_ns))
        link.send(make_packet(size=1000))
        link.send(make_packet(size=1000))
        sim.run()
        assert arrivals == [1_000_000, 2_000_000]

    def test_link_idles_then_restarts(self):
        sim = Simulator()
        src, dst, link = wire(sim, rate_bps=8e6, delay_ns=0)
        arrivals = []
        dst.set_default_handler(lambda p: arrivals.append(sim.now_ns))
        link.send(make_packet(size=1000))
        sim.run()
        sim.schedule(1_000_000, link.send, make_packet(size=1000))
        sim.run()
        assert arrivals == [1_000_000, 3_000_000]

    def test_counters(self):
        sim = Simulator()
        _, _, link = wire(sim)
        link.send(make_packet(size=700))
        link.send(make_packet(size=300))
        sim.run()
        assert link.tx_packets == 2
        assert link.tx_bytes == 1000

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        src = Host(sim, 0)
        dst = Host(sim, 1)
        with pytest.raises(ValueError):
            Link(sim, src, dst, 0, 0, DropTailQueue())
        with pytest.raises(ValueError):
            Link(sim, src, dst, 1e6, -1, DropTailQueue())

    def test_capacity_bytes_per_sec(self):
        sim = Simulator()
        _, _, link = wire(sim, rate_bps=80e6)
        assert link.capacity_bytes_per_sec == pytest.approx(10e6)


class TestOnTransmitHook:
    def test_hook_called_per_transmission(self):
        class HookQueue(DropTailQueue):
            def __init__(self):
                super().__init__(limit_packets=10)
                self.seen = []

            def on_transmit(self, packet):
                self.seen.append(packet.size_bytes)

        sim = Simulator()
        queue = HookQueue()
        _, _, link = wire(sim, queue=queue)
        link.send(make_packet(size=400))
        link.send(make_packet(size=600))
        sim.run()
        assert queue.seen == [400, 600]


class TestMutableAttributes:
    """The queue/rate_bps setters invalidate the memoized fast paths."""

    def test_queue_swap_rebinds_hook_and_waker(self):
        class HookQueue(DropTailQueue):
            def __init__(self):
                super().__init__(limit_packets=10)
                self.seen = []

            def on_transmit(self, packet):
                self.seen.append(packet.size_bytes)

        sim = Simulator()
        _, _, link = wire(sim)  # Plain queue: no on_transmit hook.
        link.send(make_packet(size=400))
        sim.run()
        replacement = HookQueue()
        link.queue = replacement
        assert link.queue is replacement
        link.send(make_packet(size=600))
        sim.run()  # The new queue's waker must restart the link.
        assert replacement.seen == [600]

    def test_rate_change_invalidates_serialization_cache(self):
        sim = Simulator()
        _, _, link = wire(sim, rate_bps=8e6)
        assert link.serialization_delay_ns(1000) == 1_000_000
        link.rate_bps = 16e6
        assert link.rate_bps == 16e6
        assert link.serialization_delay_ns(1000) == 500_000

    def test_rate_setter_rejects_nonpositive(self):
        sim = Simulator()
        _, _, link = wire(sim)
        with pytest.raises(ValueError):
            link.rate_bps = 0


class TestHostDispatch:
    def test_handler_receives_matching_flow(self):
        sim = Simulator()
        src, dst, link = wire(sim)
        flow = FlowId(0, 1, 5, 80)
        got = []
        dst.register_handler(flow, got.append)
        link.send(Packet(flow=flow, size_bytes=100))
        link.send(Packet(flow=FlowId(0, 1, 6, 80), size_bytes=100))
        sim.run()
        assert len(got) == 1 and got[0].flow == flow

    def test_duplicate_handler_rejected(self):
        sim = Simulator()
        host = Host(sim, 0)
        flow = FlowId(0, 1, 5, 80)
        host.register_handler(flow, lambda p: None)
        with pytest.raises(ValueError):
            host.register_handler(flow, lambda p: None)

    def test_unregister_then_default_handler(self):
        sim = Simulator()
        src, dst, link = wire(sim)
        flow = FlowId(0, 1, 5, 80)
        got, fallback = [], []
        dst.register_handler(flow, got.append)
        dst.unregister_handler(flow)
        dst.set_default_handler(fallback.append)
        link.send(Packet(flow=flow, size_bytes=100))
        sim.run()
        assert got == [] and len(fallback) == 1

    def test_missing_route_raises(self):
        sim = Simulator()
        host = Host(sim, 0)
        with pytest.raises(KeyError):
            host.forward(make_packet(dst=9))


class TestRouterForwarding:
    def test_router_forwards_along_route(self):
        sim = Simulator()
        router = Router(sim, 10, "r")
        a = Host(sim, 0, "a")
        b = Host(sim, 1, "b")
        link_in = Link(sim, a, router, 8e6, 0,
                       DropTailQueue(limit_packets=10))
        link_out = Link(sim, router, b, 8e6, 0,
                        DropTailQueue(limit_packets=10))
        a.routes[1] = link_in
        router.routes[1] = link_out
        got = []
        b.set_default_handler(got.append)
        a.send(make_packet())
        sim.run()
        assert len(got) == 1
        assert router.forwarded_packets == 1
