"""Tests for the two-queue leaky-bucket filter (Figure 5)."""

import pytest

from repro.core.lbf import FlowGroup, LbfDecision, LeakyBucketFilter
from repro.core.params import CebinaeParams
from repro.netsim.engine import MILLISECOND, SECOND


def make_lbf(capacity_bps=8e6, dt_ms=100, vdt_ms=1):
    """An LBF on a 1 MB/s port with 100 ms rounds by default."""
    params = CebinaeParams(dt_ns=dt_ms * MILLISECOND,
                           vdt_ns=vdt_ms * MILLISECOND,
                           l_ns=vdt_ms * MILLISECOND)
    return LeakyBucketFilter(params, capacity_bps)


def set_rates(lbf, top_bytes_per_sec, bottom_bytes_per_sec):
    """Set both queues' rates (test convenience)."""
    for queue_index in (0, 1):
        lbf.rates[queue_index][FlowGroup.TOP] = top_bytes_per_sec
        lbf.rates[queue_index][FlowGroup.BOTTOM] = bottom_bytes_per_sec


class TestAdmission:
    def test_within_allocation_goes_to_headq(self):
        lbf = make_lbf()
        set_rates(lbf, 100_000, 900_000)  # 10 kB/round for TOP.
        decision = lbf.admit(FlowGroup.TOP, 1500, now_ns=0)
        assert decision is LbfDecision.HEAD

    def test_past_head_is_delayed(self):
        lbf = make_lbf()
        set_rates(lbf, 100_000, 900_000)
        # 10 kB fits; the 8th 1500 B packet exceeds one round.
        decisions = [lbf.admit(FlowGroup.TOP, 1500, 0)
                     for _ in range(8)]
        assert decisions[:6] == [LbfDecision.HEAD] * 6
        assert LbfDecision.TAIL in decisions

    def test_past_tail_is_dropped(self):
        lbf = make_lbf()
        set_rates(lbf, 100_000, 100_000)
        decisions = [lbf.admit(FlowGroup.TOP, 1500, 0)
                     for _ in range(20)]
        assert decisions[-1] is LbfDecision.DROP

    def test_groups_are_independent(self):
        lbf = make_lbf()
        set_rates(lbf, 1_000, 900_000)
        # TOP exhausted immediately; BOTTOM still admits.
        for _ in range(5):
            lbf.admit(FlowGroup.TOP, 1500, 0)
        assert lbf.admit(FlowGroup.BOTTOM, 1500, 0) is LbfDecision.HEAD

    def test_queue_for_maps_decisions(self):
        lbf = make_lbf()
        assert lbf.queue_for(LbfDecision.HEAD) == lbf.headq
        assert lbf.queue_for(LbfDecision.TAIL) == 1 - lbf.headq
        with pytest.raises(ValueError):
            lbf.queue_for(LbfDecision.DROP)


class TestVirtualRounds:
    def test_idle_group_forfeits_credit(self):
        """Figure 5's catch-up limiting: a group idle for most of the
        round cannot burst its whole allocation at the end."""
        lbf = make_lbf()
        set_rates(lbf, 500_000, 500_000)  # 50 kB per round each.
        # Arrive at 90% through the round: the credit line is at 45 kB,
        # so bytes[g] jumps there and only ~5 kB fits in headq.
        now = 90 * MILLISECOND
        head = 0
        while lbf.admit(FlowGroup.TOP, 1500, now) is LbfDecision.HEAD:
            head += 1
        assert head <= 4  # ~5 kB / 1500 B.

    def test_early_arrivals_use_full_round(self):
        lbf = make_lbf()
        set_rates(lbf, 500_000, 500_000)
        head = 0
        while lbf.admit(FlowGroup.TOP, 1500, 0) is LbfDecision.HEAD:
            head += 1
        assert head >= 32  # ~50 kB / 1500 B.

    def test_dropped_bytes_still_commit(self):
        """The pseudocode commits the register write even on drops."""
        lbf = make_lbf()
        set_rates(lbf, 1_000, 1_000)
        for _ in range(10):
            lbf.admit(FlowGroup.TOP, 1500, 0)
        level_after_drops = lbf.bytes[FlowGroup.TOP]
        assert level_after_drops == pytest.approx(15_000)


class TestRotation:
    def test_rotation_flips_headq(self):
        lbf = make_lbf()
        assert lbf.headq == 0
        retired = lbf.rotate(100 * MILLISECOND)
        assert retired == 0
        assert lbf.headq == 1

    def test_rotation_decays_by_last_rate(self):
        lbf = make_lbf()
        set_rates(lbf, 100_000, 900_000)
        for _ in range(10):  # 15 kB offered: past one round's 10 kB.
            lbf.admit(FlowGroup.TOP, 1500, 0)
        before = lbf.bytes[FlowGroup.TOP]
        assert before == pytest.approx(15_000)
        lbf.rotate(100 * MILLISECOND)
        # Decay is one round's allocation: 10 kB.
        assert lbf.bytes[FlowGroup.TOP] == pytest.approx(before - 10_000)

    def test_decay_floors_at_zero(self):
        lbf = make_lbf()
        set_rates(lbf, 1_000_000, 1_000_000)
        lbf.admit(FlowGroup.TOP, 1500, 0)
        lbf.rotate(100 * MILLISECOND)
        assert lbf.bytes[FlowGroup.TOP] == 0.0

    def test_base_round_time_advances(self):
        lbf = make_lbf()
        lbf.rotate(100 * MILLISECOND)
        assert lbf.base_round_time_ns == 100 * MILLISECOND
        lbf.rotate(200 * MILLISECOND)
        assert lbf.base_round_time_ns == 200 * MILLISECOND

    def test_delayed_traffic_admitted_next_round(self):
        """A TAIL packet's budget is honoured after rotation."""
        lbf = make_lbf()
        set_rates(lbf, 100_000, 900_000)
        decisions = [lbf.admit(FlowGroup.TOP, 1500, 0)
                     for _ in range(12)]
        assert decisions.count(LbfDecision.TAIL) >= 5
        lbf.rotate(100 * MILLISECOND)
        # New round: roughly one round's worth already consumed, so a
        # packet still lands in the (new) head or tail, not dropped.
        decision = lbf.admit(FlowGroup.TOP, 1500, 100 * MILLISECOND)
        assert decision in (LbfDecision.HEAD, LbfDecision.TAIL)


class TestRateChanges:
    def test_rates_only_change_on_drained_queue(self):
        lbf = make_lbf()
        with pytest.raises(ValueError):
            lbf.set_queue_rates(lbf.headq, 1.0, 2.0)
        lbf.set_queue_rates(1 - lbf.headq, 1.0, 2.0)
        assert lbf.rates[1 - lbf.headq][FlowGroup.TOP] == 1.0

    def test_heterogeneous_rates_integrate(self):
        """Line 15-20 of Figure 5: head and tail queues may carry
        different rates after a reconfiguration."""
        lbf = make_lbf()
        set_rates(lbf, 200_000, 800_000)
        lbf.set_queue_rates(1 - lbf.headq, 50_000, 950_000)
        head = 0
        while lbf.admit(FlowGroup.TOP, 1500, 0) is LbfDecision.HEAD:
            head += 1
        # Head budget from current queue: 20 kB (~13 packets).
        assert 10 <= head <= 14
        tail = 0
        while lbf.admit(FlowGroup.TOP, 1500, 0) is LbfDecision.TAIL:
            tail += 1
        # Tail budget from reconfigured queue: 5 kB (~3 packets).
        assert 2 <= tail <= 4


class TestPhaseChanges:
    def test_aggregate_filter_admits_at_capacity(self):
        lbf = make_lbf()  # 1 MB/s -> 100 kB per round.
        head = 0
        while lbf.admit_aggregate(1500, 0) is LbfDecision.HEAD:
            head += 1
        assert head >= 60  # ~100 kB / 1500 B.

    def test_bootstrap_splits_by_share(self):
        lbf = make_lbf()
        lbf.total_bytes = 10_000.0
        lbf.bootstrap_from_total(top_share=0.75, bottom_share=0.25)
        assert lbf.bytes[FlowGroup.TOP] == pytest.approx(7_500)
        assert lbf.bytes[FlowGroup.BOTTOM] == pytest.approx(2_500)

    def test_bootstrap_caps_share_at_one(self):
        lbf = make_lbf()
        lbf.total_bytes = 10_000.0
        lbf.bootstrap_from_total(top_share=2.0, bottom_share=0.0)
        assert lbf.bytes[FlowGroup.TOP] == pytest.approx(10_000)

    def test_reset_clears_group_counters(self):
        lbf = make_lbf()
        lbf.admit(FlowGroup.TOP, 1500, 0)
        lbf.reset_group_counters()
        assert lbf.bytes[FlowGroup.TOP] == 0.0
        assert lbf.bytes[FlowGroup.BOTTOM] == 0.0

    def test_total_tracks_alongside_groups(self):
        lbf = make_lbf()
        lbf.admit(FlowGroup.TOP, 1500, 0)
        lbf.track_total(1500)
        assert lbf.total_bytes == pytest.approx(1500)


class TestLongRunRateCap:
    def test_admitted_rate_capped_over_many_rounds(self):
        """The scalability core: whatever the arrival pattern, a group's
        admitted bytes over N rounds cannot exceed (N+1) x rate x dT."""
        lbf = make_lbf()
        set_rates(lbf, 100_000, 900_000)  # TOP: 10 kB per round.
        admitted = 0
        rounds = 20
        now = 0
        for round_index in range(rounds):
            # Offer far more than the allocation every round.
            for _ in range(50):
                decision = lbf.admit(FlowGroup.TOP, 1500, now)
                if decision is not LbfDecision.DROP:
                    admitted += 1500
            now = (round_index + 1) * 100 * MILLISECOND
            lbf.rotate(now)
        assert admitted <= (rounds + 1) * 10_000
