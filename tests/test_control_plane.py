"""Tests for the control-plane agent (Figure 4 / Figure 6 timing)."""

import pytest

from repro.core.control_plane import CebinaeControlPlane, cebinae_factory
from repro.core.lbf import FlowGroup
from repro.core.params import CebinaeParams
from repro.core.queue_disc import CebinaeQueueDisc
from repro.netsim.engine import MILLISECOND, SECOND, Simulator
from repro.netsim.packet import FlowId, Packet
from repro.netsim.topology import PortSpec


def make_system(rate_bps=8e6, buffer_bytes=90_000, dt_ms=100,
                recompute_rounds=1, tau=0.1, delta_port=0.05,
                min_bottom=0.0):
    sim = Simulator()
    params = CebinaeParams(dt_ns=dt_ms * MILLISECOND,
                           vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                           recompute_rounds=recompute_rounds, tau=tau,
                           delta_port=delta_port,
                           delta_flow=0.05, use_exact_cache=True,
                           min_bottom_rate_fraction=min_bottom)
    qdisc = CebinaeQueueDisc(sim, params, rate_bps, buffer_bytes)
    agent = CebinaeControlPlane(sim, qdisc, record_history=True)
    return sim, qdisc, agent


def flow(port):
    return FlowId(1, 2, port, 80)


def transmit(qdisc, port, nbytes):
    """Simulate egress of nbytes for a flow (in MTU chunks)."""
    while nbytes > 0:
        chunk = min(nbytes, 1500)
        qdisc.on_transmit(Packet(flow=flow(port), size_bytes=chunk))
        nbytes -= chunk


class TestRoundLoop:
    def test_rotations_every_dt(self):
        sim, qdisc, agent = make_system(dt_ms=100)
        sim.run(until_ns=SECOND)
        assert qdisc.lbf.rotations == 10

    def test_config_applied_after_deadline(self):
        """Rate changes become visible exactly at t0 + vdT + L."""
        sim, qdisc, agent = make_system(dt_ms=100)
        # Preload egress counters so the first recompute sees
        # saturation with flow 1 dominating.
        transmit(qdisc, 1, 90_000)
        transmit(qdisc, 2, 10_000)
        # Run just past the first rotation but before the deadline.
        sim.run(until_ns=100 * MILLISECOND + MILLISECOND)
        assert qdisc.top_flows == set()
        # Past the deadline the membership change is visible.
        sim.run(until_ns=100 * MILLISECOND + 3 * MILLISECOND)
        assert flow(1) in qdisc.top_flows

    def test_recompute_every_p_rounds(self):
        sim, qdisc, agent = make_system(dt_ms=100, recompute_rounds=3)
        sim.run(until_ns=SECOND)
        assert agent.recomputations == 3


class TestSaturationDetection:
    def test_idle_port_stays_unsaturated(self):
        sim, qdisc, agent = make_system()
        sim.run(until_ns=SECOND)
        assert not qdisc.saturated
        assert all(not s.saturated for s in agent.history)

    def test_full_port_becomes_saturated(self):
        sim, qdisc, agent = make_system(dt_ms=100)
        # 1 MB/s capacity: transmit 100 kB per 100 ms round.
        def feed():
            transmit(qdisc, 1, 60_000)
            transmit(qdisc, 2, 40_000)
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        assert qdisc.saturated

    def test_partial_utilization_below_threshold(self):
        sim, qdisc, agent = make_system(delta_port=0.05)
        def feed():
            transmit(qdisc, 1, 90_000)  # 90% utilisation < 95%.
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        assert not qdisc.saturated

    def test_desaturation_releases_limits(self):
        sim, qdisc, agent = make_system()
        def feed():
            if sim.now_ns < 500 * MILLISECOND:
                transmit(qdisc, 1, 99_000)
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        assert not qdisc.saturated
        assert qdisc.top_flows == set()
        capacity = qdisc.rate_bps / 8
        for queue_index in (0, 1):
            assert qdisc.lbf.rates[queue_index][FlowGroup.TOP] == \
                capacity


class TestTaxation:
    def test_top_flow_taxed_by_tau(self):
        sim, qdisc, agent = make_system(dt_ms=100, tau=0.1)
        def feed():
            transmit(qdisc, 1, 80_000)
            transmit(qdisc, 2, 20_000)
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        saturated = [s for s in agent.history if s.saturated]
        assert saturated
        last = saturated[-1]
        assert last.top_flows == {flow(1)}
        # Measured 800 kB/s for flow 1, taxed by 10%.
        assert last.top_rate_bytes_per_sec == pytest.approx(
            800_000 * 0.9, rel=0.05)
        # The freed capacity goes to the bottom group.
        assert last.bottom_rate_bytes_per_sec == pytest.approx(
            1_000_000 - 800_000 * 0.9, rel=0.05)

    def test_similar_flows_grouped_within_delta_f(self):
        sim, qdisc, agent = make_system(dt_ms=100)
        def feed():
            transmit(qdisc, 1, 49_000)
            transmit(qdisc, 2, 48_500)  # Within 5% of flow 1.
            transmit(qdisc, 3, 2_500)
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        last = [s for s in agent.history if s.saturated][-1]
        assert last.top_flows == {flow(1), flow(2)}

    def test_bottom_rate_floor_applies(self):
        sim, qdisc, agent = make_system(tau=0.01, min_bottom=0.1)
        def feed():
            transmit(qdisc, 1, 100_000)  # One flow hogs everything.
            sim.schedule(100 * MILLISECOND, feed)
        feed()
        sim.run(until_ns=SECOND)
        last = [s for s in agent.history if s.saturated][-1]
        assert last.bottom_rate_bytes_per_sec >= 100_000  # 10% of 1MB/s


class TestFactory:
    def test_factory_builds_and_registers(self):
        sim = Simulator()
        agents = []
        factory = cebinae_factory(buffer_mtus=60, agents=agents,
                                  record_history=True)
        spec = PortSpec(sim=sim, rate_bps=8e6, delay_ns=0, name="p0")
        qdisc = factory(spec)
        assert isinstance(qdisc, CebinaeQueueDisc)
        assert len(agents) == 1
        sim.run(until_ns=SECOND)
        assert qdisc.lbf.rotations > 0

    def test_factory_derives_valid_params(self):
        sim = Simulator()
        factory = cebinae_factory(buffer_mtus=850)
        spec = PortSpec(sim=sim, rate_bps=100e6, delay_ns=0, name="p0")
        qdisc = factory(spec)
        qdisc.params.validate_for_link(100e6, 850 * 1500)
