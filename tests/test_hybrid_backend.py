"""The hybrid fluid/packet backend's fidelity-tier contract.

Three layers of pinning (see DESIGN.md section 14):

* tier-1 figure-class suites are short, transient-dominated runs — the
  policy refuses the handoff (``short_run``) and the hybrid backend is
  *byte-identical* to packet, which satisfies the JFI/share parity
  requirement exactly;
* a moderate steady-state scenario genuinely demotes to fluid and must
  track the packet backend's fairness (JFI within tolerance, per-flow
  throughput shares within 5 percent) while cutting the event count;
* the demotion/promotion rules themselves: faults and unstable warmups
  force full packet granularity, and fluid runs are deterministic.
"""

import dataclasses
import functools
import json
import pathlib

import pytest

from repro.experiments.runner import (BACKENDS, Discipline,
                                      ScenarioResult, run_scenario)
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.faults.spec import FaultSpec
from repro.netsim.fluid import (REASON_FAULTS, REASON_SHORT_RUN,
                                REASON_UNSTABLE, FluidPhaseReport,
                                HybridPolicy, MIN_DEMAND_BPS,
                                equilibrium_schedule, measured_rates_bps,
                                pool_rates, rate_divergence,
                                rate_pool_key, wire_overhead_ratio)
from repro.obs import metrics as obs_metrics
from repro.suite.spec import SuiteSpec

TIER1_DIR = pathlib.Path(__file__).parent.parent / "examples" / \
    "suites" / "tier1"
TIER1_SPECS = sorted(path.name for path in TIER1_DIR.glob("*.json"))


def _shares(result):
    total = sum(result.goodputs_bps) or 1.0
    return [goodput / total for goodput in result.goodputs_bps]


# --------------------------------------------------------------------------
# Tier-1 parity: short figure-class runs stay packet, byte for byte.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("spec_name", TIER1_SPECS)
def test_tier1_hybrid_matches_packet_exactly(spec_name):
    document = json.loads((TIER1_DIR / spec_name).read_text())
    suite = SuiteSpec.from_dict(document, source=spec_name)
    for compiled in suite.compile():
        runspec = compiled.runspec
        assert runspec is not None, "tier-1 suites are all dumbbell"
        kwargs = dict(collect_series=runspec.collect_series,
                      record_history=runspec.record_history,
                      seed=runspec.seed)
        packet = run_scenario(runspec.scaled, runspec.discipline,
                              **kwargs)
        hybrid = run_scenario(runspec.scaled, runspec.discipline,
                              backend="hybrid", **kwargs)

        summary = hybrid.hybrid_summary
        assert summary is not None
        assert summary["mode"] == "packet"
        assert summary["reason"] == REASON_SHORT_RUN

        # Byte identity (modulo the summary key itself) subsumes the
        # JFI-within-1% and shares-within-5% acceptance bounds.
        hybrid_dict = hybrid.to_dict()
        hybrid_dict.pop("hybrid_summary")
        assert hybrid_dict == packet.to_dict()


def test_packet_result_has_no_hybrid_key():
    """Pre-hybrid golden digests must keep verifying."""
    scaled = _moderate_scenario(duration_s=1.0)
    result = run_scenario(scaled, Discipline.FIFO)
    assert result.hybrid_summary is None
    assert "hybrid_summary" not in result.to_dict()


# --------------------------------------------------------------------------
# Moderate steady-state scenario: a genuine fluid phase.
# --------------------------------------------------------------------------

def _moderate_scenario(duration_s=30.0):
    spec = ScenarioSpec(name="validate-hybrid", rate_bps=5e6,
                        rtts_ms=(256.0, 128.0), buffer_mtus=40,
                        cca_mix=(("cubic", 8), ("cubic", 8)),
                        duration_s=duration_s)
    return ScalePolicy().apply(spec)


@functools.lru_cache(maxsize=None)
def _fidelity_pair(discipline_value):
    discipline = Discipline(discipline_value)
    scaled = _moderate_scenario()
    packet = run_scenario(scaled, discipline)
    hybrid = run_scenario(scaled, discipline, backend="hybrid")
    return packet, hybrid


@pytest.mark.parametrize("discipline",
                         [Discipline.FIFO, Discipline.FQ,
                          Discipline.CEBINAE])
def test_steady_state_fidelity(discipline):
    packet, hybrid = _fidelity_pair(discipline.value)

    summary = hybrid.hybrid_summary
    assert summary is not None and summary["mode"] == "fluid"
    assert summary["epochs"] >= 1
    assert summary["fluid_s"] > 0

    assert abs(hybrid.jfi - packet.jfi) < 0.06
    for share_h, share_p in zip(_shares(hybrid), _shares(packet)):
        assert abs(share_h - share_p) < 0.05
    # The point of the exercise: most of the run never costs events.
    assert packet.events / hybrid.events >= 2.0


def test_hybrid_is_deterministic():
    scaled = _moderate_scenario()
    first = run_scenario(scaled, Discipline.FIFO, backend="hybrid")
    second = run_scenario(scaled, Discipline.FIFO, backend="hybrid")
    assert first.to_dict() == second.to_dict()


def test_hybrid_result_round_trips():
    _, hybrid = _fidelity_pair(Discipline.FIFO.value)
    restored = ScenarioResult.from_dict(hybrid.to_dict())
    assert restored.to_dict() == hybrid.to_dict()
    assert restored.hybrid_summary == hybrid.hybrid_summary


# --------------------------------------------------------------------------
# Demotion / promotion rules.
# --------------------------------------------------------------------------

def test_faults_force_packet_granularity():
    scaled = _moderate_scenario(duration_s=16.0)
    faults = FaultSpec(loss_rate=0.001)
    result = run_scenario(scaled, Discipline.FIFO, backend="hybrid",
                          faults=faults)
    summary = result.hybrid_summary
    assert summary is not None
    assert summary["mode"] == "packet"
    assert summary["reason"] == REASON_FAULTS


def test_unstable_warmup_promotes_to_packet():
    # Long enough that one warmup extension still leaves a viable
    # fluid window — the probe must actually retry before giving up.
    scaled = _moderate_scenario(duration_s=24.0)
    # A tolerance no real measurement can meet: every probe reads
    # "diverging", the warmup extends max_extensions times, then the
    # run promotes to full packet granularity.
    policy = HybridPolicy(stability_tol=1e-9, max_extensions=1)
    result = run_scenario(scaled, Discipline.FIFO, backend="hybrid",
                          hybrid_policy=policy)
    summary = result.hybrid_summary
    assert summary is not None
    assert summary["mode"] == "packet"
    assert summary["reason"] == REASON_UNSTABLE
    assert summary["extensions"] == 1
    assert summary["divergence"] is not None


def test_hybrid_metrics_recorded():
    scaled = _moderate_scenario(duration_s=16.0)
    with obs_metrics.collected() as registry:
        run_scenario(scaled, Discipline.FIFO, backend="hybrid")
        snapshot = registry.snapshot()
    counters = {(row["name"], row["labels"].get("mode", "")):
                row["value"] for row in snapshot["counters"]}
    assert counters.get(("hybrid_runs_total", "fluid")) == 1
    assert ("hybrid_demotions_total", "") in counters


# --------------------------------------------------------------------------
# Unit tests: policy arithmetic and the fluid primitives.
# --------------------------------------------------------------------------

class TestHybridPolicy:
    def test_defaults_validate(self):
        HybridPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"min_warmup_s": 0.0},
        {"settle_rtts": -1.0},
        {"post_arrival_settle_s": -0.1},
        {"measure_s": 0.0},
        {"measure_s": 5.0},  # exceeds min_warmup_s
        {"stability_tol": 0.0},
        {"stability_tol": 1.0},
        {"max_extensions": -1},
        {"min_fluid_fraction": 0.0},
        {"min_fluid_fraction": 1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            HybridPolicy(**kwargs)

    def test_settle_takes_the_binding_constraint(self):
        policy = HybridPolicy(min_warmup_s=4.0, settle_rtts=20.0,
                              post_arrival_settle_s=1.0)
        assert policy.settle_s(0.05) == 4.0          # warmup floor
        assert policy.settle_s(0.5) == 10.0          # RTT settling
        assert policy.settle_s(0.05, last_start_s=9.0) == 10.0

    def test_handoff_adds_measurement_window(self):
        policy = HybridPolicy()
        assert policy.handoff_s(0.05) == \
            policy.settle_s(0.05) + policy.measure_s

    def test_fluid_viability(self):
        policy = HybridPolicy()  # handoff at 8s for short RTTs
        assert policy.fluid_viable(30.0, 0.05)
        assert not policy.fluid_viable(9.0, 0.05)


def test_fluid_report_round_trips():
    report = FluidPhaseReport(mode="fluid", handoff_s=8.0,
                              fluid_s=22.0, epochs=3, extensions=1,
                              divergence=0.03, packet_events=1234)
    assert FluidPhaseReport.from_dict(report.to_dict()) == report


class TestPooling:
    def test_pool_rates_averages_within_class(self):
        pooled = pool_rates([4.0, 2.0, 10.0], ["a", "a", "b"])
        assert pooled == [3.0, 3.0, 10.0]

    def test_pool_rates_conserves_aggregate(self):
        rates = [1.0, 5.0, 2.0, 8.0]
        pooled = pool_rates(rates, ["x", "y", "x", "y"])
        assert sum(pooled) == pytest.approx(sum(rates))

    def test_pool_rates_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pool_rates([1.0], ["a", "b"])

    def test_rate_pool_key_groups_within_factor_of_base(self):
        # A sawtooth phase spread (< 2x) can share a bucket...
        assert rate_pool_key(100.0) == rate_pool_key(150.0)
        # ...a starved flow 100x below its peers cannot.
        assert rate_pool_key(1e6) != rate_pool_key(1e4)

    def test_rate_pool_key_clamps_tiny_rates(self):
        assert rate_pool_key(0.0) == rate_pool_key(MIN_DEMAND_BPS)

    def test_rate_pool_key_rejects_bad_base(self):
        with pytest.raises(ValueError):
            rate_pool_key(100.0, base=1.0)


class TestStabilityProbe:
    def test_measured_rates(self):
        rates = measured_rates_bps([0, 100], [1000, 100], 1_000_000_000)
        assert rates == [8000.0, 0.0]

    def test_measured_rates_rejects_bad_window(self):
        with pytest.raises(ValueError):
            measured_rates_bps([0], [1], 0)

    def test_identical_vectors_have_zero_divergence(self):
        assert rate_divergence([5.0, 3.0], [5.0, 3.0]) == 0.0

    def test_disjoint_vectors_are_maximal(self):
        assert rate_divergence([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_all_zero_reads_as_divergent(self):
        assert rate_divergence([0.0], [0.0]) == 1.0

    def test_distributional_ignores_permutation(self):
        assert rate_divergence([1.0, 9.0], [9.0, 1.0],
                               distributional=True) == 0.0
        assert rate_divergence([1.0, 9.0], [9.0, 1.0]) > 0.5


class TestEquilibriumSchedule:
    def test_fifo_reproduces_feasible_anchors(self):
        anchors = [1e6, 3e6]
        [(span, rates)] = equilibrium_schedule("fifo", anchors, 100)
        assert span == 100
        assert rates == pytest.approx(anchors)

    def test_fq_equalises(self):
        [(_, rates)] = equilibrium_schedule("fq", [1e6, 3e6], 100)
        assert rates == pytest.approx([2e6, 2e6])

    def test_cebinae_converges_toward_equal_split(self):
        scaled = _moderate_scenario(duration_s=1.0)
        params = scaled.cebinae
        anchors = [1e6, 3e6]
        schedule = equilibrium_schedule(
            "cebinae", anchors, 50 * params.dt_ns, cebinae=params)
        assert len(schedule) >= 1
        first_gap = abs(anchors[0] - anchors[1])
        last_gap = abs(schedule[-1][1][0] - schedule[-1][1][1])
        assert last_gap < first_gap

    def test_cebinae_requires_params(self):
        with pytest.raises(ValueError):
            equilibrium_schedule("cebinae", [1.0], 100)

    def test_empty_phase_is_empty(self):
        assert equilibrium_schedule("fifo", [1.0], 0) == []


def test_wire_overhead_ratio_clamps():
    assert wire_overhead_ratio(1500, 1400) == pytest.approx(1500 / 1400)
    assert wire_overhead_ratio(100, 200) == 1.0
    assert wire_overhead_ratio(100, 0) == 1.0


# --------------------------------------------------------------------------
# Wiring: backend validation in the runner and the suite layer.
# --------------------------------------------------------------------------

def test_unknown_backend_rejected():
    scaled = _moderate_scenario(duration_s=1.0)
    with pytest.raises(ValueError, match="unknown backend"):
        run_scenario(scaled, Discipline.FIFO, backend="quantum")


def test_suite_spec_backend_round_trip():
    document = json.loads(
        (TIER1_DIR / "figure9_class.json").read_text())
    suite = SuiteSpec.from_dict(document, source="figure9_class.json")
    assert suite.backend == "packet"
    assert "backend" not in suite.to_dict()

    hybrid_suite = dataclasses.replace(suite, backend="hybrid")
    assert hybrid_suite.to_dict()["backend"] == "hybrid"
    reparsed = SuiteSpec.from_dict(hybrid_suite.to_dict(),
                                   source="roundtrip")
    assert reparsed.backend == "hybrid"
    for compiled in hybrid_suite.compile():
        assert compiled.runspec is not None
        assert compiled.runspec.backend == "hybrid"
        assert compiled.runspec.label.endswith("~hybrid")
        assert compiled.runspec.params()["backend"] == "hybrid"


def test_backends_constant():
    assert BACKENDS == ("packet", "hybrid")
