"""End-to-end properties of the full Cebinae system (paper section 4's
design principles, validated on live traffic)."""

import pytest

from repro.core.control_plane import cebinae_factory
from repro.core.params import CebinaeParams
from repro.fairness.metrics import jain_fairness_index
from repro.netsim.engine import MILLISECOND, Simulator, seconds
from repro.netsim.queues import DropTailQueue
from repro.netsim.tracing import FlowMonitor
from repro.netsim.topology import build_dumbbell
from repro.tcp.flows import connect_flow


def run_cebinae(ccas, rtts_s, rate_bps=15e6, buffer_mtus=50,
                duration_s=30.0, tau=0.05, record=False):
    params = CebinaeParams.for_link(
        rate_bps, buffer_mtus * 1500,
        max_rtt_ns=seconds(max(rtts_s)),
        tau=tau, delta_port=min(2 * tau, 0.16), delta_flow=tau,
        min_bottom_rate_fraction=0.02)
    agents = []
    sim = Simulator()
    dumbbell = build_dumbbell(
        [seconds(rtt) for rtt in rtts_s], rate_bps,
        cebinae_factory(params=params, buffer_mtus=buffer_mtus,
                        agents=agents, record_history=True),
        sim=sim)
    monitor = FlowMonitor(sim)
    flows = [connect_flow(dumbbell.senders[i], dumbbell.receivers[i],
                          cca, monitor=monitor, src_port=10_000 + i)
             for i, cca in enumerate(ccas)]
    sim.run(until_ns=seconds(duration_s))
    goodputs = [monitor.goodputs_bps(seconds(duration_s))[f.flow_id]
                for f in flows]
    return goodputs, dumbbell, agents[0], flows


class TestDesignPrinciples:
    def test_no_reordering_within_flows(self):
        """Queue rotations and membership changes must not reorder a
        flow's packets (section 4.3) — receivers would see spurious
        dupACKs.  In-order delivery means zero out-of-order bytes
        whenever no loss occurred; with losses, reordering shows up as
        fast retransmits that were unnecessary, so we check that total
        retransmissions stay proportional to actual drops."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno", "newreno"], [0.02, 0.04])
        queue = dumbbell.bottleneck.queue
        total_drops = (queue.lbf_drops + queue.buffer_drops
                       + queue.dropped_packets)
        total_retransmits = sum(f.sender.retransmits for f in flows)
        # Every retransmission should be attributable to a drop
        # somewhere (bottleneck or elsewhere); allow go-back-N
        # multiplicative slack.
        assert total_retransmits <= 4 * max(total_drops, 1) + 20

    def test_single_flow_unmolested(self):
        """One flow alone: saturation triggers, the flow is ⊤, and the
        tax costs at most ~tau of capacity (example 1)."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno"], [0.03], tau=0.04)
        assert goodputs[0] > 0.80 * 15e6

    def test_utilization_never_collapses(self):
        """'Utilization will fluctuate around full capacity but will
        never decrease by more than tau' — allow slack for TCP
        dynamics at simulation scale."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno", "cubic", "vegas"], [0.03] * 3, tau=0.04)
        assert sum(goodputs) > 0.75 * 15e6

    def test_aggressive_flow_taxed_not_starved(self):
        """Never make unfairness worse: the taxed aggressor must keep
        a viable share (the min-bottom floor guards the other side)."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["cubic", "vegas", "vegas", "vegas"], [0.04] * 4)
        assert min(goodputs) > 0.03 * 15e6
        assert jain_fairness_index(goodputs) > 0.6

    def test_bottleneck_detection_targets_the_heavy_flow(self):
        """⊤ membership should be dominated by the flow that actually
        holds the most bandwidth under FIFO conditions."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno", "vegas", "vegas"], [0.05] * 3)
        saturated = [s for s in agent.history if s.saturated]
        if not saturated:
            pytest.skip("port never saturated in this configuration")
        reno_flow = flows[0].flow_id
        reno_memberships = sum(1 for s in saturated
                               if reno_flow in s.top_flows)
        assert reno_memberships > len(saturated) * 0.3

    def test_two_queue_invariant(self):
        """The headline hardware claim: exactly two queues, ever."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno", "cubic"], [0.03, 0.03])
        assert len(dumbbell.bottleneck.queue._queues) == 2

    def test_rotation_cadence(self):
        """Rotations happen exactly every dT for the whole run."""
        goodputs, dumbbell, agent, flows = run_cebinae(
            ["newreno"], [0.03], duration_s=10.0)
        queue = dumbbell.bottleneck.queue
        expected = int(seconds(10.0) // queue.params.dt_ns)
        assert abs(queue.lbf.rotations - expected) <= 1


class TestAgainstFifoBaseline:
    def test_cebinae_improves_vegas_vs_reno(self):
        """The core comparison at test scale: JFI(Cebinae) must beat
        JFI(FIFO) when loss-based fights delay-based."""
        ccas = ["vegas"] * 4 + ["newreno"]
        rtts = [0.06] * 5

        goodputs_ceb, _, _, _ = run_cebinae(ccas, rtts,
                                            duration_s=40.0)

        sim = Simulator()
        dumbbell = build_dumbbell(
            [seconds(rtt) for rtt in rtts], 15e6,
            lambda spec: DropTailQueue.from_mtu_count(50), sim=sim)
        monitor = FlowMonitor(sim)
        flows = [connect_flow(dumbbell.senders[i],
                              dumbbell.receivers[i], cca,
                              monitor=monitor, src_port=10_000 + i)
                 for i, cca in enumerate(ccas)]
        sim.run(until_ns=seconds(40.0))
        goodputs_fifo = [
            monitor.goodputs_bps(seconds(40.0))[f.flow_id]
            for f in flows]

        assert jain_fairness_index(goodputs_ceb) > \
            jain_fairness_index(goodputs_fifo)
