"""Edge cases of ScalePolicy and construction-time spec validation.

Complements tests/test_experiments.py (happy-path scaling): here the
guard rails — flow scaling versus staggered starts, the recorded
scale factors the analysis layer divides by, and degenerate specs that
must die at construction rather than mid-run.
"""

import dataclasses

import pytest

from repro.experiments.scenarios import (FlowPlan, ScalePolicy,
                                         ScenarioSpec)

TINY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def spec(**overrides):
    base = dict(name="t", rate_bps=100e6, rtts_ms=(20.0, 40.0),
                buffer_mtus=100,
                cca_mix=(("newreno", 2), ("cubic", 1)),
                duration_s=2.0)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestFlowScaleGuards:
    def test_flow_scaling_staggered_starts_rejected(self):
        # Scaling 80 flows down to max_flows would silently drop or
        # misalign the 80 per-flow start times; the policy must refuse.
        staggered = spec(cca_mix=(("newreno", 80),), rtts_ms=(20.0,),
                        start_times_s=tuple(0.01 * i for i in range(80)))
        policy = dataclasses.replace(TINY, max_flows=8)
        with pytest.raises(ValueError,
                           match="flow-scale staggered-start"):
            policy.apply(staggered)

    def test_staggered_starts_fine_when_mix_fits(self):
        staggered = spec(start_times_s=(0.0, 0.5, 1.0))
        scaled = dataclasses.replace(TINY, max_flows=8).apply(staggered)
        assert scaled.flow_scale == 1.0
        assert scaled.spec.start_times_s == (0.0, 0.5, 1.0)


class TestScaleRecording:
    def test_rate_scale_is_paper_over_sim(self):
        scaled = TINY.apply(spec())
        assert scaled.rate_scale == pytest.approx(
            scaled.paper_spec.rate_bps / scaled.spec.rate_bps)
        assert scaled.rate_scale == pytest.approx(100e6 / 5e6)

    def test_flow_scale_is_paper_over_sim_flows(self):
        big = spec(cca_mix=(("newreno", 60), ("cubic", 20)),
                   rtts_ms=(20.0, 40.0))
        scaled = dataclasses.replace(TINY, max_flows=8).apply(big)
        sim_flows = sum(count for _, count in scaled.spec.cca_mix)
        assert scaled.flow_scale == pytest.approx(80 / sim_flows)
        assert scaled.flow_scale > 1.0

    def test_paper_spec_kept_verbatim(self):
        original = spec()
        scaled = TINY.apply(original)
        assert scaled.paper_spec == original
        assert scaled.spec.rate_bps == 5e6

    def test_buffer_shrinks_with_rate_scale(self):
        scaled = TINY.apply(spec(buffer_mtus=400))
        assert scaled.spec.buffer_mtus == pytest.approx(
            max(10, round(400 / scaled.rate_scale)))


class TestDegenerateSpecsRejected:
    def test_zero_flows_rejected(self):
        with pytest.raises(ValueError, match="zero flows"):
            spec(cca_mix=())

    def test_zero_count_group_rejected(self):
        with pytest.raises(ValueError, match="count >= 1"):
            spec(cca_mix=(("newreno", 0),))

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s must be > 0"):
            spec(duration_s=0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s must be > 0"):
            spec(duration_s=-1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError, match="rate_bps must be > 0"):
            spec(rate_bps=0.0)

    def test_empty_rtts_rejected(self):
        with pytest.raises(ValueError, match="rtts_ms"):
            spec(rtts_ms=())

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ValueError, match="every RTT must be > 0"):
            spec(rtts_ms=(20.0, 0.0))

    def test_zero_buffer_rejected(self):
        with pytest.raises(ValueError, match="buffer_mtus"):
            spec(buffer_mtus=0)

    def test_unknown_cca_rejected_with_known_list(self):
        with pytest.raises(ValueError,
                           match="unknown CCA 'reno'; known: bbr"):
            spec(cca_mix=(("reno", 1),))

    def test_rtt_group_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot map onto"):
            spec(rtts_ms=(10.0, 20.0, 30.0))

    def test_start_times_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="start times"):
            spec(start_times_s=(0.0,))

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError, match="start"):
            spec(start_times_s=(0.0, 0.0, -0.5))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            spec(name="")


class TestFlowPlanValidation:
    def test_valid_plan_accepted(self):
        plan = FlowPlan(index=0, cca="newreno", rtt_s=0.02)
        assert plan.start_time_s == 0.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            FlowPlan(index=-1, cca="newreno", rtt_s=0.02)

    def test_unknown_cca_rejected(self):
        with pytest.raises(ValueError, match="unknown CCA"):
            FlowPlan(index=0, cca="dctcp", rtt_s=0.02)

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ValueError, match="rtt_s"):
            FlowPlan(index=0, cca="newreno", rtt_s=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_time_s"):
            FlowPlan(index=0, cca="newreno", rtt_s=0.02,
                     start_time_s=-1.0)
