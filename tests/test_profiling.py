"""The hot-path profiling layer: counters, reports, CLI wiring."""

import json

from repro.experiments import cli
from repro.netsim import profiling
from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import FlowId, Packet
from repro.netsim.queues import DropTailQueue


def drive_small_network(packets=5):
    sim = Simulator()
    src, dst = Host(sim, 0, "src"), Host(sim, 1, "dst")
    link = Link(sim, src, dst, rate_bps=1e9, delay_ns=1000,
                queue=DropTailQueue(limit_packets=64))
    flow = FlowId(0, 1, 1, 80)
    for i in range(packets):
        link.send(Packet(flow=flow, size_bytes=1500, seq=i))
    sim.run()
    return sim


class TestProfilerLifecycle:
    def test_off_by_default(self):
        assert profiling.current() is None
        sim = drive_small_network()
        assert sim.processed_events > 0  # Runs fine unobserved.

    def test_profiled_scope_installs_and_removes(self):
        with profiling.profiled() as profiler:
            assert profiling.current() is profiler
            drive_small_network()
        assert profiling.current() is None
        assert profiler.events > 0

    def test_counts_every_engine_event(self):
        with profiling.profiled() as profiler:
            sim = drive_small_network()
        assert profiler.events == sim.processed_events

    def test_component_breakdown_names_classes(self):
        with profiling.profiled() as profiler:
            drive_small_network()
        report = profiler.report()
        # Transmission completions are Link-bound; deliveries Host-bound.
        assert report.component_events.get("Link", 0) > 0
        assert report.component_events.get("Host", 0) > 0
        assert sum(report.component_events.values()) == report.events

    def test_aggregates_across_simulators(self):
        with profiling.profiled() as profiler:
            first = drive_small_network()
            second = drive_small_network()
        report = profiler.report()
        assert report.runs == 2
        assert report.events == (first.processed_events
                                 + second.processed_events)
        assert report.sim_s > 0
        assert report.wall_s > 0


class TestComponentOf:
    def test_bound_method_uses_owner_class(self):
        sim = Simulator()
        assert profiling.component_of(sim.run) == "Simulator"

    def test_plain_function_uses_qualname_root(self):
        def helper():
            pass
        assert profiling.component_of(helper).startswith(
            "TestComponentOf")

    def test_lambda_and_builtin_do_not_crash(self):
        assert profiling.component_of(lambda: None)
        assert profiling.component_of(print)


class TestReportFormats:
    def _report(self):
        with profiling.profiled() as profiler:
            drive_small_network()
        return profiler.report()

    def test_text_report_mentions_throughput(self):
        text = self._report().format_text()
        assert "events/sec" in text
        assert "sim/wall ratio" in text
        assert "Link" in text

    def test_bench_json_shape(self, tmp_path):
        report = self._report()
        path = tmp_path / "BENCH_profile.json"
        profiling.write_bench_json(str(path), "unit-test", report)
        payload = json.loads(path.read_text())
        (entry,) = payload["benchmarks"]
        assert entry["name"] == "unit-test"
        assert entry["group"] == "profile"
        assert entry["extra_info"]["events"] == report.events
        assert "component_events" in entry["extra_info"]

    def test_empty_report_is_safe(self):
        report = profiling.HotPathProfiler().report()
        assert report.events_per_sec == 0.0
        assert report.sim_wall_ratio == 0.0
        assert "hot-path profile" in report.format_text()


class TestCliProfileFlag:
    def test_profile_flag_prints_report(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_profile.json"
        assert cli.main(["table3", "--profile",
                         "--profile-json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        payload = json.loads(json_path.read_text())
        assert payload["benchmarks"][0]["name"] == "cebinae-repro table3"

    def test_profiler_uninstalled_after_cli(self):
        cli.main(["table3", "--profile"])
        assert profiling.current() is None
