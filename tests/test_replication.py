"""Tests for multi-seed replication support."""

import pytest

from repro.experiments.replication import (ReplicatedMetric,
                                           ReplicatedResult, replicate,
                                           replicate_comparison,
                                           significantly_fairer)
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec


def tiny_scenario():
    policy = ScalePolicy(target_rate_bps=10e6, max_rate_bps=10e6)
    spec = ScenarioSpec(name="tiny", rate_bps=100e6, rtts_ms=(20, 40),
                        buffer_mtus=100,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=5.0)
    return policy.apply(spec)


class TestReplicatedMetric:
    def test_mean_and_std(self):
        metric = ReplicatedMetric([1.0, 2.0, 3.0])
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(1.0)

    def test_single_sample_zero_width(self):
        metric = ReplicatedMetric([0.9])
        assert metric.half_width == 0.0
        assert metric.interval == (0.9, 0.9)

    def test_interval_contains_mean(self):
        metric = ReplicatedMetric([0.8, 0.9, 0.85, 0.95])
        low, high = metric.interval
        assert low <= metric.mean <= high
        assert high - low > 0

    def test_str_format(self):
        assert "±" in str(ReplicatedMetric([1.0, 2.0]))


class TestSeededRuns:
    def test_same_seed_is_deterministic(self):
        scaled = tiny_scenario()
        a = run_scenario(scaled, Discipline.FIFO, seed=1)
        b = run_scenario(scaled, Discipline.FIFO, seed=1)
        assert a.goodputs_bps == b.goodputs_bps

    def test_different_seeds_differ(self):
        scaled = tiny_scenario()
        a = run_scenario(scaled, Discipline.FIFO, seed=1)
        b = run_scenario(scaled, Discipline.FIFO, seed=2)
        assert a.goodputs_bps != b.goodputs_bps

    def test_replicate_aggregates(self):
        scaled = tiny_scenario()
        result = replicate(scaled, Discipline.FIFO, seeds=(0, 1, 2))
        assert len(result.runs) == 3
        assert 0 < result.jfi.mean <= 1
        assert result.goodput_bps.mean > 0

    def test_replicate_comparison_keys(self):
        scaled = tiny_scenario()
        results = replicate_comparison(scaled, seeds=(0, 1))
        assert set(results) == {Discipline.FIFO, Discipline.CEBINAE}


class TestSignificance:
    def _fake(self, jfis):
        class Run:
            def __init__(self, jfi):
                self.jfi = jfi
                self.total_goodput_bps = 1.0
        return ReplicatedResult(Discipline.FIFO,
                                [Run(x) for x in jfis])

    def test_clear_separation_is_significant(self):
        better = self._fake([0.95, 0.96, 0.94])
        worse = self._fake([0.5, 0.52, 0.48])
        assert significantly_fairer(better, worse)

    def test_overlap_is_not_significant(self):
        a = self._fake([0.7, 0.9, 0.8])
        b = self._fake([0.75, 0.85, 0.8])
        assert not significantly_fairer(a, b)
