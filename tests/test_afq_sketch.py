"""Tests for the count-min sketch and the AFQ baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heavyhitter.sketch import CountMinSketch
from repro.netsim.afq import AfqQueue
from repro.netsim.packet import FlowId, Packet


def make_packet(port, size=1500):
    return Packet(flow=FlowId(1, 2, port, 80), size_bytes=size)


class TestCountMinSketch:
    def test_single_key_exact(self):
        sketch = CountMinSketch(rows=2, columns=64)
        sketch.update("a", 100)
        sketch.update("a", 50)
        assert sketch.estimate("a") == 150

    def test_never_underestimates(self):
        sketch = CountMinSketch(rows=2, columns=4)
        truth = {}
        for index in range(40):
            key = index % 10
            sketch.update(key, 10)
            truth[key] = truth.get(key, 0) + 10
        for key, value in truth.items():
            assert sketch.estimate(key) >= value

    def test_collisions_overestimate(self):
        sketch = CountMinSketch(rows=1, columns=1)
        sketch.update("a", 100)
        sketch.update("b", 100)
        assert sketch.estimate("a") == 200  # Forced collision.

    def test_reset(self):
        sketch = CountMinSketch()
        sketch.update("a", 100)
        sketch.reset()
        assert sketch.estimate("a") == 0

    def test_total_added(self):
        sketch = CountMinSketch(rows=2, columns=16)
        sketch.update("a", 100)
        sketch.update("b", 50)
        assert sketch.total_added == 150

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountMinSketch(rows=0)

    @given(st.lists(st.tuples(st.integers(0, 20),
                              st.integers(1, 1000)),
                    min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_overestimate_property(self, updates):
        sketch = CountMinSketch(rows=2, columns=8)
        truth = {}
        for key, amount in updates:
            sketch.update(key, amount)
            truth[key] = truth.get(key, 0) + amount
        for key, value in truth.items():
            assert sketch.estimate(key) >= value


class TestAfqScheduling:
    def test_single_flow_fifo(self):
        queue = AfqQueue(num_queues=8, bytes_per_round=3000)
        packets = [make_packet(1) for _ in range(4)]
        for packet in packets:
            assert queue.enqueue(packet)
        assert [queue.dequeue() for _ in range(4)] == packets

    def test_two_flows_interleaved_fairly(self):
        """Byte-fair interleaving: flows alternate round by round."""
        queue = AfqQueue(num_queues=16, bytes_per_round=1500)
        for _ in range(4):
            queue.enqueue(make_packet(1))
        for _ in range(4):
            queue.enqueue(make_packet(2))
        order = [queue.dequeue().flow.src_port for _ in range(8)]
        # Each round serves one packet of each flow.
        for round_index in range(4):
            pair = order[2 * round_index: 2 * round_index + 2]
            assert sorted(pair) == [1, 2]

    def test_horizon_drop(self):
        """A flow burst past nQ rounds is dropped (Equation 1)."""
        queue = AfqQueue(num_queues=4, bytes_per_round=1500)
        results = [queue.enqueue(make_packet(1)) for _ in range(8)]
        assert results[:4] == [True] * 4
        assert not all(results[4:])
        assert queue.horizon_drops >= 1

    def test_more_queues_admit_bigger_bursts(self):
        small = AfqQueue(num_queues=4, bytes_per_round=1500)
        large = AfqQueue(num_queues=32, bytes_per_round=1500)
        small_ok = sum(1 for _ in range(40)
                       if small.enqueue(make_packet(1)))
        large_ok = sum(1 for _ in range(40)
                       if large.enqueue(make_packet(1)))
        assert large_ok > small_ok

    def test_idle_flow_rejoins_current_round(self):
        queue = AfqQueue(num_queues=8, bytes_per_round=1500)
        for _ in range(6):
            queue.enqueue(make_packet(1))
        for _ in range(6):
            assert queue.dequeue() is not None
        # current_round has advanced; a new flow starts fresh.
        assert queue.enqueue(make_packet(2))
        assert queue.dequeue().flow.src_port == 2

    def test_byte_limit(self):
        queue = AfqQueue(num_queues=8, bytes_per_round=3000,
                         limit_bytes=3000)
        assert queue.enqueue(make_packet(1))
        assert queue.enqueue(make_packet(1))
        assert not queue.enqueue(make_packet(1))
        assert queue.buffer_drops == 1

    def test_len_and_bytes(self):
        queue = AfqQueue()
        queue.enqueue(make_packet(1, size=700))
        queue.enqueue(make_packet(2, size=300))
        assert len(queue) == 2
        assert queue.byte_length == 1000

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AfqQueue(num_queues=1)
        with pytest.raises(ValueError):
            AfqQueue(bytes_per_round=0)

    def test_waker_on_first_packet(self):
        queue = AfqQueue()
        calls = []
        queue.set_waker(lambda: calls.append(1))
        queue.enqueue(make_packet(1))
        queue.enqueue(make_packet(1))
        assert calls == [1]


class TestAfqFairness:
    def test_aggressive_flow_capped_by_calendar(self):
        """Offered 10:1, served ~1:1 — the fair-queuing property."""
        queue = AfqQueue(num_queues=8, bytes_per_round=1500)
        admitted = {1: 0, 2: 0}
        for round_index in range(20):
            for _ in range(10):
                if queue.enqueue(make_packet(1)):
                    admitted[1] += 1
            if queue.enqueue(make_packet(2)):
                admitted[2] += 1
            # Drain roughly two packets per iteration (a slow link).
            queue.dequeue()
            queue.dequeue()
        # The aggressive flow is admitted at most ~nQ ahead of fair.
        assert admitted[1] <= admitted[2] + queue.num_queues + 2
