"""repro.core.units: the checked conversion helpers.

The aliases themselves are transparent (NewType over int/float); what
these tests pin down is the *checked* part — every helper rejects
out-of-dimension inputs with UnitError instead of silently producing a
corrupted quantity — plus exactness of the conversions the simulator's
byte-identity contract depends on.
"""

import math

import pytest

from repro.core.units import (BITS_PER_BYTE, NS_PER_S, UnitError,
                              bits_from_bytes, bytes_from_bits,
                              ns_from_seconds, ratio_of,
                              rate_from_volume, seconds_from_ns,
                              transmit_time_ns)


# -- time --------------------------------------------------------------

def test_ns_from_seconds_rounds_to_nearest_ns():
    assert ns_from_seconds(1.5) == 1_500_000_000
    assert ns_from_seconds(0) == 0
    # Sub-ns fractions round, never truncate.
    assert ns_from_seconds(1e-9 * 0.6) == 1


def test_ns_seconds_round_trip_is_exact_for_whole_ns():
    for value_ns in (0, 1, 17, NS_PER_S, 3 * NS_PER_S + 250):
        assert ns_from_seconds(seconds_from_ns(value_ns)) == value_ns


def test_seconds_from_ns_requires_int():
    with pytest.raises(UnitError):
        seconds_from_ns(1.5)
    with pytest.raises(UnitError):
        seconds_from_ns(True)


def test_ns_from_seconds_rejects_non_finite():
    with pytest.raises(UnitError):
        ns_from_seconds(float("inf"))
    with pytest.raises(UnitError):
        ns_from_seconds(float("nan"))
    with pytest.raises(UnitError):
        ns_from_seconds("1.0")


# -- bytes / bits ------------------------------------------------------

def test_bits_bytes_conversions_are_exact():
    assert bits_from_bytes(1500) == 12_000
    assert bytes_from_bits(12_000) == 1500
    assert bytes_from_bits(bits_from_bytes(0)) == 0


def test_bytes_from_bits_rejects_partial_bytes():
    with pytest.raises(UnitError):
        bytes_from_bits(12_001)


def test_byte_bit_helpers_require_int():
    with pytest.raises(UnitError):
        bits_from_bytes(1500.0)
    with pytest.raises(UnitError):
        bytes_from_bits(True)


# -- rates -------------------------------------------------------------

def test_rate_from_volume():
    assert rate_from_volume(10_000_000, 1.0) == 10e6
    assert rate_from_volume(5_000, 0.5) == 10_000


def test_rate_from_volume_rejects_non_positive_duration():
    with pytest.raises(UnitError):
        rate_from_volume(1000, 0)
    with pytest.raises(UnitError):
        rate_from_volume(1000, -1.0)


def test_transmit_time_matches_the_inline_idiom():
    # The helper is the checked form of bytes * 8 * SECOND / rate; it
    # must agree with the inline arithmetic used on the Link hot path.
    for size_bytes, rate_bps in ((1500, 10e6), (64, 1e9), (9000, 40e9)):
        expected = int(round(
            size_bytes * BITS_PER_BYTE * NS_PER_S / rate_bps))
        assert transmit_time_ns(size_bytes, rate_bps) == expected
    assert isinstance(transmit_time_ns(1500, 10e6), int)


def test_transmit_time_rejects_bad_rate():
    with pytest.raises(UnitError):
        transmit_time_ns(1500, 0)
    with pytest.raises(UnitError):
        transmit_time_ns(1500, float("nan"))


# -- ratios ------------------------------------------------------------

def test_ratio_of():
    assert ratio_of(1, 4) == 0.25
    assert math.isclose(ratio_of(2.0, 3.0), 2.0 / 3.0)


def test_ratio_of_rejects_zero_denominator():
    with pytest.raises(UnitError):
        ratio_of(1, 0)


def test_unit_error_is_a_type_error():
    # Callers that guard with except TypeError keep working.
    assert issubclass(UnitError, TypeError)
