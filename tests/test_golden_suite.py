"""Golden-result conformance over every committed suite spec.

The determinism contract — fixed seed ⇒ byte-identical ScenarioResult
— is replayed here for each declarative workload under every cell of
the (scheduler backend x debug mode) matrix, and the digests must
match the golden files committed under ``tests/golden/``.  Any new
workload dropped into the example suites automatically gains this
test; regenerate goldens with::

    cebinae-repro suite examples/suites/<dir> --update-golden tests/golden
"""

from pathlib import Path

import pytest

from repro.suite import (SuiteRegistry, check_golden, load_spec_file,
                         suite_digests)
from repro.suite.golden import DEBUG_MODES, SCHEDULER_BACKENDS

REPO_ROOT = Path(__file__).resolve().parent.parent
SUITES_ROOT = REPO_ROOT / "examples" / "suites"
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

SPEC_PATHS = sorted(path
                    for suite_dir in SUITES_ROOT.iterdir()
                    if suite_dir.is_dir()
                    for path in suite_dir.glob("*.json"))


def test_committed_suites_exist():
    assert SPEC_PATHS, f"no suite specs under {SUITES_ROOT}"


def test_every_spec_has_a_golden():
    missing = [path.stem for path in SPEC_PATHS
               if not (GOLDEN_DIR / f"{path.stem}.json").exists()]
    assert not missing, (
        f"suite specs without golden files: {missing}; run "
        f"--update-golden")


def test_suite_directories_load_as_registries():
    # The CLI loads whole directories; a broken sibling spec must not
    # hide behind per-file parametrization.
    for suite_dir in sorted(SUITES_ROOT.iterdir()):
        if suite_dir.is_dir():
            registry = SuiteRegistry.from_directory(suite_dir)
            assert len(registry) > 0


@pytest.mark.parametrize("debug", DEBUG_MODES,
                         ids=lambda d: f"debug{'On' if d else 'Off'}")
@pytest.mark.parametrize("scheduler", SCHEDULER_BACKENDS)
@pytest.mark.parametrize("spec_path", SPEC_PATHS,
                         ids=lambda p: p.stem)
def test_golden_conformance(spec_path, scheduler, debug):
    """One spec, one matrix cell: digests must equal the golden file."""
    spec = load_spec_file(spec_path)
    digests = suite_digests(spec, scheduler=scheduler, debug=debug)
    mismatches = check_golden(GOLDEN_DIR, spec, digests)
    assert not mismatches, "\n".join(mismatches)
