"""Tests for the Table 3 resource model."""

import pytest

from repro.core.resource_model import (TOFINO_PORTS, estimate_resources,
                                       queues_required)


class TestTable3Calibration:
    """The model must reproduce the paper's two published rows."""

    def test_one_stage_row(self):
        usage = estimate_resources(cache_stages=1, slots_per_port=4096)
        assert usage.pipeline_stages == 11
        assert usage.phv_bits == 937
        assert usage.sram_kb == pytest.approx(2448, abs=60)
        assert usage.tcam_kb == 15
        assert usage.vliw_instructions == 89
        assert usage.queues == 64

    def test_two_stage_row(self):
        usage = estimate_resources(cache_stages=2, slots_per_port=4096)
        assert usage.phv_bits == 1042
        assert usage.sram_kb == pytest.approx(4096, abs=120)
        assert usage.tcam_kb == 34
        assert usage.vliw_instructions == 93
        assert usage.queues == 64

    def test_paper_headline_under_25_percent(self):
        for stages in (1, 2):
            usage = estimate_resources(cache_stages=stages)
            assert usage.max_utilization < 0.25


class TestModelBehaviour:
    def test_sram_scales_with_slots(self):
        small = estimate_resources(slots_per_port=1024)
        large = estimate_resources(slots_per_port=4096)
        assert large.sram_kb > small.sram_kb

    def test_queues_scale_with_ports_only(self):
        usage = estimate_resources(ports=16)
        assert usage.queues == 32
        more_stages = estimate_resources(ports=16, cache_stages=4)
        assert more_stages.queues == 32

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_resources(cache_stages=0)
        with pytest.raises(ValueError):
            estimate_resources(slots_per_port=0)
        with pytest.raises(ValueError):
            estimate_resources(ports=0)

    def test_utilization_fractions(self):
        usage = estimate_resources()
        assert 0 < usage.sram_utilization < 1
        assert 0 < usage.phv_utilization < 1
        assert usage.queue_utilization == pytest.approx(
            2 / 32)


class TestQueueScalingComparison:
    """Section 5.5: Cebinae's queue count is constant in flow count."""

    def test_cebinae_constant(self):
        assert queues_required(10, "cebinae") == 2
        assert queues_required(1_000_000, "cebinae") == 2

    def test_ideal_fq_grows_linearly(self):
        assert queues_required(1000, "fq") == 1000

    def test_afq_fixed_budget(self):
        assert queues_required(10, "afq") == 32
        assert queues_required(10, "pcq") == 32

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            queues_required(10, "magic")
