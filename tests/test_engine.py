"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.engine import (MILLISECOND, SECOND, SimulationError,
                                 Simulator, seconds, to_seconds)


class TestTimeConversions:
    def test_seconds_to_ns(self):
        assert seconds(1.5) == 1_500_000_000

    def test_seconds_rounds_to_nearest(self):
        assert seconds(1e-9) == 1
        assert seconds(0.25e-9) == 0

    def test_to_seconds_roundtrip(self):
        assert to_seconds(seconds(2.5)) == pytest.approx(2.5)

    def test_constants_are_consistent(self):
        assert SECOND == 1000 * MILLISECOND


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(5, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now_ns))
        sim.run()
        assert seen == [42]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now_ns)
            sim.schedule(10, inner)

        def inner():
            times.append(sim.now_ns)

        sim.schedule(5, outer)
        sim.run()
        assert times == [5, 15]

    def test_args_are_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        first.cancel()
        assert sim.peek_time_ns() == 20


class TestRunSemantics:
    def test_run_until_executes_events_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "at")
        sim.schedule(101, fired.append, "after")
        sim.run(until_ns=100)
        assert fired == ["at"]

    def test_run_until_advances_clock_to_deadline(self):
        sim = Simulator()
        sim.run(until_ns=500)
        assert sim.now_ns == 500

    def test_remaining_events_survive_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, 1)
        sim.run(until_ns=50)
        sim.run(until_ns=150)
        assert fired == [1]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, reenter)
        sim.run()
        assert len(errors) == 1

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.processed_events == 7


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=200))
    def test_execution_order_is_sorted(self, delays):
        sim = Simulator()
        executed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: executed.append(d))
        sim.run()
        assert executed == sorted(delays)
        assert len(executed) == len(delays)

    @given(st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=10**6))
    def test_run_until_partitions_events(self, delays, cutoff):
        sim = Simulator()
        executed = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: executed.append(d))
        sim.run(until_ns=cutoff)
        assert executed == sorted(d for d in delays if d <= cutoff)
