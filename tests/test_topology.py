"""Tests for topology builders, routing, and tracing utilities."""

import pytest

from repro.netsim.engine import MILLISECOND, SECOND, Simulator, seconds
from repro.netsim.packet import FlowId, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import (Network, build_dumbbell,
                                   build_parking_lot, drop_tail_factory)
from repro.netsim.tracing import (FlowMonitor, LinkMonitor, TimeSeries)


def fifo(spec):
    return DropTailQueue(limit_packets=100)


class TestNetwork:
    def test_route_installation(self):
        network = Network()
        a = network.add_host("a")
        r = network.add_router("r")
        b = network.add_host("b")
        network.connect(a, r, 1e6, 1000)
        network.connect(r, b, 1e6, 1000)
        network.install_routes()
        assert a.routes[b.node_id].dst is r
        assert r.routes[b.node_id].dst is b
        assert b.routes[a.node_id].dst is r

    def test_path_links(self):
        network = Network()
        a = network.add_host("a")
        r = network.add_router("r")
        b = network.add_host("b")
        network.connect(a, r, 1e6, 1000)
        network.connect(r, b, 1e6, 1000)
        links = network.path_links(a, b)
        assert [link.src.name for link in links] == ["a", "r"]

    def test_unique_node_ids(self):
        network = Network()
        ids = {network.add_host().node_id for _ in range(10)}
        assert len(ids) == 10


class TestDumbbell:
    def test_structure(self):
        dumbbell = build_dumbbell([seconds(0.02)] * 3, 10e6, fifo)
        assert len(dumbbell.senders) == 3
        assert len(dumbbell.receivers) == 3
        assert dumbbell.bottleneck.rate_bps == 10e6

    def test_end_to_end_delivery(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6, fifo, sim=sim)
        got = []
        flow = FlowId(dumbbell.senders[0].node_id,
                      dumbbell.receivers[0].node_id, 5, 80)
        dumbbell.receivers[0].register_handler(flow, got.append)
        dumbbell.senders[0].send(Packet(flow=flow, size_bytes=1000))
        sim.run()
        assert len(got) == 1

    def test_rtt_budget_respected(self):
        """Propagation RTT (no serialization) matches the request."""
        sim = Simulator()
        rtt_ns = seconds(0.05)
        dumbbell = build_dumbbell([rtt_ns], 10e9, fifo, sim=sim,
                                  access_rate_factor=10,
                                  tx_jitter_ns=0)
        flow = FlowId(dumbbell.senders[0].node_id,
                      dumbbell.receivers[0].node_id, 5, 80)
        echo_flow = flow.reversed()
        times = {}

        def on_data(packet):
            dumbbell.receivers[0].send(
                Packet(flow=echo_flow, size_bytes=0))

        def on_echo(packet):
            times["rtt"] = sim.now_ns

        dumbbell.receivers[0].register_handler(flow, on_data)
        dumbbell.senders[0].register_handler(echo_flow, on_echo)
        dumbbell.senders[0].send(Packet(flow=flow, size_bytes=0))
        sim.run()
        # Zero-byte packets: pure propagation, so RTT is exact.
        assert times["rtt"] == rtt_ns

    def test_too_small_rtt_rejected(self):
        with pytest.raises(ValueError):
            build_dumbbell([seconds(0.001)], 10e6, fifo)

    def test_distinct_rtts_produce_distinct_delays(self):
        dumbbell = build_dumbbell([seconds(0.02), seconds(0.08)],
                                  10e6, fifo)
        assert dumbbell.rtts_ns == [seconds(0.02), seconds(0.08)]


class TestParkingLot:
    def test_structure(self):
        lot = build_parking_lot(2, [1, 2, 1], 10e6, fifo)
        assert len(lot.routers) == 4
        assert len(lot.bottlenecks) == 3
        assert len(lot.long_senders) == 2
        assert [len(group) for group in lot.cross_senders] == [1, 2, 1]

    def test_long_flow_crosses_all_bottlenecks(self):
        sim = Simulator()
        lot = build_parking_lot(1, [1, 1], 10e6, fifo, sim=sim)
        flow = FlowId(lot.long_senders[0].node_id,
                      lot.long_receivers[0].node_id, 5, 80)
        got = []
        lot.long_receivers[0].register_handler(flow, got.append)
        lot.long_senders[0].send(Packet(flow=flow, size_bytes=100))
        sim.run()
        assert len(got) == 1
        for bottleneck in lot.bottlenecks:
            assert bottleneck.tx_packets == 1

    def test_cross_flow_uses_only_its_segment(self):
        sim = Simulator()
        lot = build_parking_lot(1, [1, 1], 10e6, fifo, sim=sim)
        flow = FlowId(lot.cross_senders[1][0].node_id,
                      lot.cross_receivers[1][0].node_id, 5, 80)
        got = []
        lot.cross_receivers[1][0].register_handler(flow, got.append)
        lot.cross_senders[1][0].send(Packet(flow=flow, size_bytes=100))
        sim.run()
        assert len(got) == 1
        assert lot.bottlenecks[0].tx_packets == 0
        assert lot.bottlenecks[1].tx_packets == 1

    def test_requires_a_segment(self):
        with pytest.raises(ValueError):
            build_parking_lot(1, [], 10e6, fifo)


class TestTimeSeries:
    def test_binning(self):
        series = TimeSeries(bin_width_ns=100)
        series.add(50, 1.0)
        series.add(99, 2.0)
        series.add(100, 5.0)
        assert series.bin_value(0) == 3.0
        assert series.bin_value(1) == 5.0

    def test_dense_includes_empty_bins(self):
        series = TimeSeries(bin_width_ns=100)
        series.add(250, 1.0)
        assert series.dense(300) == [0.0, 0.0, 1.0]

    def test_dense_boundary(self):
        series = TimeSeries(bin_width_ns=100)
        series.add(0, 1.0)
        assert series.dense(100) == [1.0]
        assert series.dense(101) == [1.0, 0.0]

    def test_total(self):
        series = TimeSeries(bin_width_ns=100)
        series.add(10, 1.5)
        series.add(500, 2.5)
        assert series.total == 4.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TimeSeries(bin_width_ns=0)


class TestFlowMonitor:
    def test_goodput_accounting(self):
        sim = Simulator()
        monitor = FlowMonitor(sim)
        flow = FlowId(1, 2, 3, 4)
        sim.schedule(seconds(0.5), monitor.on_delivered, flow, 1000)
        sim.schedule(seconds(1.5), monitor.on_delivered, flow, 3000)
        sim.run()
        record = monitor.records[flow]
        assert record.delivered_bytes == 4000
        assert record.goodput_bps(seconds(2)) == pytest.approx(16_000)

    def test_series_binning(self):
        sim = Simulator()
        monitor = FlowMonitor(sim)
        flow = FlowId(1, 2, 3, 4)
        sim.schedule(seconds(0.5), monitor.on_delivered, flow, 1000)
        sim.schedule(seconds(1.5), monitor.on_delivered, flow, 1000)
        sim.run()
        series = monitor.goodput_series_bps(flow, seconds(2))
        assert series == [pytest.approx(8000), pytest.approx(8000)]

    def test_registered_flow_appears_with_zero(self):
        sim = Simulator()
        monitor = FlowMonitor(sim)
        flow = FlowId(1, 2, 3, 4)
        monitor.register(flow)
        assert monitor.goodputs_bps(seconds(1))[flow] == 0.0


class TestLinkMonitor:
    def test_throughput_series(self):
        sim = Simulator()
        network = Network(sim)
        a = network.add_host("a")
        b = network.add_host("b")
        link = network.add_link(a, b, 8e6, 0,
                                drop_tail_factory(limit_packets=100))
        a.routes[b.node_id] = link
        monitor = LinkMonitor(sim, [link], bin_width_ns=SECOND)
        flow = FlowId(a.node_id, b.node_id, 1, 2)
        # 1000 bytes in the first second only.
        a.send(Packet(flow=flow, size_bytes=1000))
        sim.run(until_ns=seconds(2))
        series = monitor.throughput_series_bps(link, seconds(2))
        assert series[0] == pytest.approx(8000)
        assert series[1] == 0.0
