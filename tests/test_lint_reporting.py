"""The simlint reporting layer: fingerprints, baselines, SARIF.

Covers the full baseline lifecycle (create via --update-baseline,
suppress on re-run, go stale as S904 when the hazard is fixed, reasons
surviving refreshes), the SARIF 2.1.0 shape, and the determinism
contract: byte-identical SARIF/JSON output across processes with
different hash seeds.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import (BaselineEntry, BaselineError,
                                     apply_baseline,
                                     fingerprint_findings,
                                     load_baseline, render_baseline,
                                     updated_entries)
from repro.analysis.linter import run_lint
from repro.analysis.sarif import render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SIMLINT = REPO_ROOT / "tools" / "simlint.py"

DIRTY = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()


    def bucket(flow, n):
        return hash(flow) % n
""")


def run_cli(args, cwd, hashseed="0"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = hashseed
    return subprocess.run(
        [sys.executable, str(SIMLINT), *args],
        capture_output=True, text=True, cwd=str(cwd), env=env)


# -- fingerprints ------------------------------------------------------

def fingerprints_for(tree: Path):
    run = run_lint([str(tree)])
    return fingerprint_findings(run.findings, run.sources)


def test_fingerprints_survive_line_shifts(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    before = {fp for _, fp in fingerprints_for(tmp_path)}
    dirty.write_text("# a new leading comment\n\n" + DIRTY)
    after = {fp for _, fp in fingerprints_for(tmp_path)}
    assert before == after


def test_fingerprints_distinguish_identical_lines(tmp_path):
    (tmp_path / "twice.py").write_text(textwrap.dedent("""\
        def a(flow):
            return hash(flow)


        def b(flow):
            return hash(flow)
    """))
    pairs = fingerprints_for(tmp_path)
    assert len(pairs) == 2
    assert pairs[0][1] != pairs[1][1]  # occurrence index disambiguates


# -- baseline API ------------------------------------------------------

def test_baseline_round_trip_and_staleness(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    pairs = fingerprints_for(tmp_path)
    entries = updated_entries(pairs, [])
    text = render_baseline(entries)
    baseline = tmp_path / "base.json"
    baseline.write_text(text)

    loaded = load_baseline(baseline)
    assert loaded == sorted(entries, key=lambda e: (e.path, e.rule_id,
                                                    e.fingerprint))
    kept, stale = apply_baseline(pairs, loaded, baseline)
    assert kept == [] and stale == []

    # Fix one hazard: its entry must surface as S904.
    dirty.write_text(DIRTY.replace("hash(flow) % n", "0"))
    kept, stale = apply_baseline(fingerprints_for(tmp_path), loaded,
                                 baseline)
    assert kept == []
    assert [f.rule_id for f in stale] == ["S904"]
    assert "D101" in stale[0].message
    assert stale[0].path == str(baseline)


def test_updated_entries_preserve_reasons(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    pairs = fingerprints_for(tmp_path)
    first = updated_entries(pairs, [])
    triaged = [BaselineEntry(e.fingerprint, e.rule_id, e.path,
                             f"triaged: {e.rule_id}") for e in first]
    refreshed = updated_entries(pairs, triaged)
    assert {e.reason for e in refreshed} == \
        {f"triaged: {e.rule_id}" for e in first}
    # A brand-new finding would get the placeholder instead.
    assert all("TODO" not in e.reason for e in refreshed)


def test_render_baseline_is_deterministic(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    entries = updated_entries(fingerprints_for(tmp_path), [])
    assert render_baseline(entries) == \
        render_baseline(list(reversed(entries)))
    assert render_baseline(entries).endswith("\n")


def test_load_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        load_baseline(bad)


# -- CLI lifecycle -----------------------------------------------------

def test_cli_baseline_lifecycle(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    baseline = tmp_path / ".simlint-baseline.json"

    # 1. Dirty tree, no baseline: findings, exit 1.
    result = run_cli(["dirty.py"], tmp_path)
    assert result.returncode == 1

    # 2. Adopt the findings.
    result = run_cli(["--baseline", baseline.name, "--update-baseline",
                      "dirty.py"], tmp_path)
    assert result.returncode == 0, result.stderr
    assert baseline.exists()
    assert "TODO" in baseline.read_text()

    # 3. Baselined tree is clean.
    result = run_cli(["--baseline", baseline.name, "dirty.py"],
                     tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 findings" in result.stdout

    # 4. Fixing a hazard makes its entry stale: S904, exit 1.
    (tmp_path / "dirty.py").write_text(
        DIRTY.replace("hash(flow) % n", "0"))
    result = run_cli(["--baseline", baseline.name, "dirty.py"],
                     tmp_path)
    assert result.returncode == 1
    assert "S904" in result.stdout

    # 5. --update-baseline prunes it again.
    result = run_cli(["--baseline", baseline.name, "--update-baseline",
                      "dirty.py"], tmp_path)
    assert result.returncode == 0
    result = run_cli(["--baseline", baseline.name, "dirty.py"],
                     tmp_path)
    assert result.returncode == 0


def test_cli_update_baseline_requires_baseline(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    result = run_cli(["--update-baseline", "dirty.py"], tmp_path)
    assert result.returncode == 2
    assert "--baseline" in result.stderr


def test_cli_rejects_corrupt_baseline(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    (tmp_path / "base.json").write_text("[]")
    result = run_cli(["--baseline", "base.json", "dirty.py"], tmp_path)
    assert result.returncode == 2


# -- SARIF -------------------------------------------------------------

def sarif_for(tmp_path):
    run = run_lint([str(tmp_path)])
    return json.loads(render_sarif(
        fingerprint_findings(run.findings, run.sources)))


def test_sarif_shape(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    payload = sarif_for(tmp_path)
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    fired = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert fired == {"D101", "D103"}  # only fired rules are listed
    for result in run["results"]:
        assert result["ruleId"] in fired
        rule_index = result["ruleIndex"]
        assert run["tool"]["driver"]["rules"][rule_index]["id"] == \
            result["ruleId"]
        assert "simlintFingerprint/v1" in result["partialFingerprints"]


def test_sarif_levels(tmp_path):
    (tmp_path / "dirty.py").write_text(
        DIRTY + "\n\ndef collect(items=[]):\n    return items\n")
    payload = sarif_for(tmp_path)
    levels = {result["ruleId"]: result["level"]
              for result in payload["runs"][0]["results"]}
    assert levels["D101"] == "error"
    assert levels["H301"] == "warning"


def test_sarif_taint_results_have_related_locations(tmp_path):
    (tmp_path / "chain.py").write_text(textwrap.dedent("""\
        import time


        def stamp():
            return time.monotonic()


        def drive(sim):
            sim.schedule(int(stamp()), print)
    """))
    payload = sarif_for(tmp_path)
    d201 = next(r for r in payload["runs"][0]["results"]
                if r["ruleId"] == "D201")
    related = d201["relatedLocations"]
    assert related and related[0]["physicalLocation"][
        "region"]["startLine"] == 5


def test_cli_sarif_stdout_suppresses_text_report(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    result = run_cli(["--sarif", "-", "dirty.py"], tmp_path)
    assert result.returncode == 1
    payload = json.loads(result.stdout)  # nothing but SARIF on stdout
    assert payload["version"] == "2.1.0"


# -- determinism of the reports ----------------------------------------

def test_sarif_and_json_are_byte_identical_across_processes(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    (tmp_path / "chain.py").write_text(textwrap.dedent("""\
        import time


        def stamp():
            return time.monotonic()


        def drive(sim):
            sim.schedule(int(stamp()), print)
    """))
    runs = [run_cli(["--sarif", "-", "dirty.py", "chain.py"],
                    tmp_path, hashseed=seed) for seed in ("1", "2")]
    assert runs[0].stdout == runs[1].stdout
    jsons = [run_cli(["--json", "dirty.py", "chain.py"],
                     tmp_path, hashseed=seed) for seed in ("3", "4")]
    assert jsons[0].stdout == jsons[1].stdout


def test_sarif_file_output_matches_stdout(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY)
    to_stdout = run_cli(["--sarif", "-", "dirty.py"], tmp_path)
    run_cli(["--sarif", "out.sarif", "dirty.py"], tmp_path)
    assert (tmp_path / "out.sarif").read_text() == to_stdout.stdout
