"""Batched same-timestamp execution is invisible except in speed.

The batched drain (``Simulator.run`` + ``EventScheduler.pop_at``)
coalesces trains of events sharing one timestamp into a single outer
pop.  Its whole contract is *order equivalence*: batched and unbatched
runs execute the identical event sequence, including ties, zero-delay
reschedules, and cancellations — which these tests pin with a
hypothesis replay across both scheduler backends, plus an end-to-end
byte-identity check on a full scenario.
"""

import json
import os
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.netsim.engine import (CalendarScheduler, EventScheduler,
                                 HeapScheduler, Simulator)

SCHEDULERS = ("heap", "calendar")


# --------------------------------------------------------------------------
# pop_at semantics, per backend.
# --------------------------------------------------------------------------

class MinimalScheduler(EventScheduler):
    """A list-based scheduler relying on the base-class pop_at."""

    def __init__(self):
        self.entries = []

    def push(self, entry):
        self.entries.append(entry)

    def pop(self):
        if not self.entries:
            return None
        self.entries.sort()
        return self.entries.pop(0)

    def __len__(self):
        return len(self.entries)


def _entry(time_ns, seq):
    from repro.netsim.engine import Event
    return (time_ns, seq, Event(time_ns, seq, lambda: None, ()))


@pytest.mark.parametrize("make", [HeapScheduler, CalendarScheduler,
                                  MinimalScheduler])
class TestPopAt:
    def test_hit_returns_matching_head(self, make):
        scheduler = make()
        scheduler.push(_entry(10, 0))
        scheduler.push(_entry(10, 1))
        scheduler.push(_entry(20, 2))
        assert scheduler.pop_at(10)[1] == 0
        assert scheduler.pop_at(10)[1] == 1
        assert scheduler.pop_at(10) is None
        assert len(scheduler) == 1

    def test_miss_leaves_queue_intact(self, make):
        scheduler = make()
        scheduler.push(_entry(20, 0))
        assert scheduler.pop_at(10) is None
        assert len(scheduler) == 1
        assert scheduler.pop()[0] == 20

    def test_empty_returns_none(self, make):
        assert make().pop_at(0) is None

    def test_interleaves_with_pop(self, make):
        scheduler = make()
        for seq, time_ns in enumerate((5, 5, 7, 7, 7, 9)):
            scheduler.push(_entry(time_ns, seq))
        order = []
        entry = scheduler.pop()
        while entry is not None:
            order.append(entry[1])
            tied = scheduler.pop_at(entry[0])
            while tied is not None:
                order.append(tied[1])
                tied = scheduler.pop_at(entry[0])
            entry = scheduler.pop()
        assert order == [0, 1, 2, 3, 4, 5]


# --------------------------------------------------------------------------
# The REPRO_BATCH knob and constructor override.
# --------------------------------------------------------------------------

class TestBatchKnob:
    def test_default_is_batched(self):
        with mock.patch.dict(os.environ, clear=False):
            os.environ.pop("REPRO_BATCH", None)
            assert Simulator().batched

    def test_env_zero_disables(self):
        with mock.patch.dict(os.environ, {"REPRO_BATCH": "0"}):
            assert not Simulator().batched

    def test_env_one_enables(self):
        with mock.patch.dict(os.environ, {"REPRO_BATCH": "1"}):
            assert Simulator().batched

    def test_constructor_overrides_env(self):
        with mock.patch.dict(os.environ, {"REPRO_BATCH": "0"}):
            assert Simulator(batch=True).batched
        with mock.patch.dict(os.environ, {"REPRO_BATCH": "1"}):
            assert not Simulator(batch=False).batched


# --------------------------------------------------------------------------
# Order equivalence: hypothesis replay.
# --------------------------------------------------------------------------

#: One seed event: a start time, a chain of follow-up delays (0 = a
#: zero-delay reschedule joining the tail of its own train), and
#: whether some earlier pending event gets cancelled from its callback.
_PLANS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),
              st.lists(st.sampled_from([0, 0, 1, 7]), max_size=3),
              st.booleans()),
    min_size=1, max_size=24)


def _execute(scheduler_name, batch, plan):
    """Run one plan; the log is the observable execution order."""
    sim = Simulator(scheduler=scheduler_name, batch=batch)
    log = []
    handles = []

    def make_callback(tag, follow, cancels):
        def callback():
            log.append((sim.now_ns, tag))
            if cancels and handles:
                handles[tag % len(handles)].cancel()
            for depth, delay in enumerate(follow):
                sim.schedule(delay,
                             make_callback((tag, depth), (), False))
        return callback

    for index, (start, follow, cancels) in enumerate(plan):
        handles.append(sim.schedule_at(
            start, make_callback(index, follow, cancels)))
    sim.run()
    return log


@settings(max_examples=60, deadline=None)
@given(plan=_PLANS)
def test_batched_execution_is_order_equivalent(plan):
    reference = _execute("heap", False, plan)
    for scheduler_name in SCHEDULERS:
        for batch in (False, True):
            assert _execute(scheduler_name, batch, plan) == reference


# --------------------------------------------------------------------------
# End to end: byte-identical ScenarioResult.
# --------------------------------------------------------------------------

def _tiny_scenario():
    spec = ScenarioSpec(name="batch-parity", rate_bps=5e6,
                        rtts_ms=(24.0,), buffer_mtus=16,
                        cca_mix=(("newreno", 3),), duration_s=1.5)
    return ScalePolicy().apply(spec)


def test_scenario_result_identical_across_batch_modes():
    scaled = _tiny_scenario()
    payloads = set()
    for scheduler_name in SCHEDULERS:
        for batch_env in ("0", "1"):
            with mock.patch.dict(os.environ,
                                 {"REPRO_BATCH": batch_env,
                                  "REPRO_SCHEDULER": scheduler_name}):
                result = run_scenario(scaled, Discipline.CEBINAE)
            payloads.add(json.dumps(result.to_dict(), sort_keys=True))
    assert len(payloads) == 1
