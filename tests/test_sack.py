"""Tests for SACK generation (receiver) and SACK recovery (sender)."""

import pytest

from repro.netsim.engine import MILLISECOND, Simulator, seconds
from repro.netsim.packet import MSS_BYTES, FlowId, Packet, PacketType
from repro.tcp.newreno import NewReno
from repro.tcp.socket import TcpReceiver, TcpSender

from tests.test_tcp_socket import make_pair


def data_packet(flow, seq, payload=MSS_BYTES):
    return Packet(flow=flow, size_bytes=payload + 52,
                  ptype=PacketType.DATA, seq=seq,
                  payload_bytes=payload)


class TestReceiverSackGeneration:
    def make_receiver(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow)
        acks = []
        a.register_handler(flow.reversed(), acks.append)
        return sim, b, flow, receiver, acks

    def test_in_order_data_has_no_sack(self):
        sim, host, flow, receiver, acks = self.make_receiver()
        receiver._on_data_packet(data_packet(flow, 0))
        sim.run()
        assert acks[-1].ack == MSS_BYTES
        assert acks[-1].sack == ()

    def test_gap_generates_sack_block(self):
        sim, host, flow, receiver, acks = self.make_receiver()
        receiver._on_data_packet(data_packet(flow, 0))
        receiver._on_data_packet(data_packet(flow, 2 * MSS_BYTES))
        sim.run()
        assert acks[-1].ack == MSS_BYTES
        assert acks[-1].sack == ((2 * MSS_BYTES, 3 * MSS_BYTES),)

    def test_hole_fill_advances_cumulative_ack(self):
        sim, host, flow, receiver, acks = self.make_receiver()
        receiver._on_data_packet(data_packet(flow, 0))
        receiver._on_data_packet(data_packet(flow, 2 * MSS_BYTES))
        receiver._on_data_packet(data_packet(flow, MSS_BYTES))
        sim.run()
        assert acks[-1].ack == 3 * MSS_BYTES
        assert acks[-1].sack == ()
        assert receiver.delivered_bytes == 3 * MSS_BYTES

    def test_duplicate_data_ignored(self):
        sim, host, flow, receiver, acks = self.make_receiver()
        receiver._on_data_packet(data_packet(flow, 0))
        receiver._on_data_packet(data_packet(flow, 0))
        sim.run()
        assert receiver.delivered_bytes == MSS_BYTES
        assert acks[-1].ack == MSS_BYTES

    def test_sack_disabled_receiver_sends_plain_acks(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow, sack_enabled=False)
        acks = []
        a.register_handler(flow.reversed(), acks.append)
        receiver._on_data_packet(data_packet(flow, 2 * MSS_BYTES))
        sim.run()
        assert acks[-1].sack == ()

    def test_overlapping_segments_counted_once(self):
        sim, host, flow, receiver, acks = self.make_receiver()
        receiver._on_data_packet(data_packet(flow, MSS_BYTES))
        # A retransmission that overlaps the buffered range.
        receiver._on_data_packet(data_packet(flow, 0,
                                             payload=2 * MSS_BYTES))
        sim.run()
        assert receiver.delivered_bytes == 2 * MSS_BYTES
        assert receiver.out_of_order_bytes == 0


class TestSenderSackRecovery:
    def lossy_connection(self, sim, drop_seqs):
        """A connection whose forward path drops chosen sequence
        numbers once."""
        a, b, fwd, rev = make_pair(sim, rate_bps=40e6)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow)
        sender = TcpSender(a, flow, NewReno())
        pending = set(drop_seqs)
        original = fwd.queue.enqueue

        def filtered(packet):
            if packet.seq in pending:
                pending.discard(packet.seq)
                return False
            return original(packet)

        fwd.queue.enqueue = filtered
        return sender, receiver

    def test_single_loss_repaired_without_rto(self):
        sim = Simulator()
        sender, receiver = self.lossy_connection(sim, {3 * MSS_BYTES})
        sender.start()
        sim.run(until_ns=seconds(2))
        assert sender.timeouts == 0
        assert sender.retransmits >= 1
        assert receiver.delivered_bytes > 20 * MSS_BYTES

    def test_multiple_losses_in_one_window(self):
        """SACK repairs several holes in roughly one RTT, where
        plain NewReno would need one RTT per hole."""
        sim = Simulator()
        drops = {3 * MSS_BYTES, 5 * MSS_BYTES, 7 * MSS_BYTES}
        sender, receiver = self.lossy_connection(sim, set(drops))
        sender.start()
        sim.run(until_ns=seconds(2))
        assert sender.timeouts == 0
        assert sender.retransmits >= 3
        # All holes repaired: the receiver's contiguous prefix has
        # caught up with everything the sender saw ACKed (the last few
        # ACKs may still be on the wire at the cutoff).
        assert receiver.rcv_nxt >= sender.snd_una
        assert receiver.out_of_order_bytes <= 16 * MSS_BYTES

    def test_recovery_exits_cleanly(self):
        sim = Simulator()
        sender, receiver = self.lossy_connection(sim, {3 * MSS_BYTES})
        sender.start()
        sim.run(until_ns=seconds(2))
        assert not sender.in_recovery
        assert sender._scoreboard.total_bytes == 0 or \
            sender._scoreboard.max_end > sender.snd_una

    def test_pipe_counts_unsacked_outstanding(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim)
        flow = FlowId(0, 1, 100, 80)
        TcpReceiver(b, flow)
        sender = TcpSender(a, flow, NewReno())
        sender.start()
        # Before any ACK: pipe equals the initial window.
        assert sender.pipe_bytes == sender.in_flight_bytes
        # SACKing a middle block reduces pipe by exactly that block...
        sender._scoreboard.add(2 * MSS_BYTES, 4 * MSS_BYTES)
        # ...plus everything below the forward edge (FACK: presumed
        # lost).
        fack = sender._scoreboard.max_end
        assert sender.pipe_bytes == sender.snd_nxt - fack

    def test_dupack_with_new_sack_info_counts(self):
        sim = Simulator()
        drops = {3 * MSS_BYTES}
        sender, receiver = self.lossy_connection(sim, set(drops))
        sender.start()
        sim.run(until_ns=seconds(1))
        # Recovery was triggered by duplicate ACKs carrying SACK.
        assert sender.retransmits >= 1
        assert sender.timeouts == 0

    def test_sack_disabled_falls_back_to_newreno(self):
        sim = Simulator()
        a, b, fwd, rev = make_pair(sim, rate_bps=40e6)
        flow = FlowId(0, 1, 100, 80)
        receiver = TcpReceiver(b, flow, sack_enabled=False)
        sender = TcpSender(a, flow, NewReno(), sack_enabled=False)
        pending = {3 * MSS_BYTES}
        original = fwd.queue.enqueue

        def filtered(packet):
            if packet.seq in pending:
                pending.discard(packet.seq)
                return False
            return original(packet)

        fwd.queue.enqueue = filtered
        sender.start()
        sim.run(until_ns=seconds(2))
        assert sender.timeouts == 0
        assert receiver.delivered_bytes > 20 * MSS_BYTES
