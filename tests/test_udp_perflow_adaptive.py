"""Tests for the UDP app, per-flow Cebinae, and the adaptive-τ
supervisor."""

import pytest

from repro.core.adaptive import (AdaptiveTauConfig,
                                 AdaptiveTauController,
                                 adaptive_cebinae_factory)
from repro.core.control_plane import CebinaeControlPlane
from repro.core.lbf import FlowGroup, LbfDecision
from repro.core.params import CebinaeParams
from repro.core.perflow import (PerFlowCebinaeControlPlane,
                                PerFlowCebinaeQueueDisc,
                                perflow_cebinae_factory)
from repro.core.queue_disc import CebinaeQueueDisc
from repro.netsim.engine import MILLISECOND, SECOND, Simulator, seconds
from repro.netsim.packet import FlowId, Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.topology import build_dumbbell
from repro.netsim.tracing import FlowMonitor
from repro.tcp.flows import connect_flow
from repro.tcp.udp import UdpSender, UdpSink, connect_udp_flow


class TestUdpApp:
    def test_cbr_rate_is_exact(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(
                                      limit_packets=100),
                                  sim=sim, tx_jitter_ns=0)
        monitor = FlowMonitor(sim)
        sender = connect_udp_flow(dumbbell.senders[0],
                                  dumbbell.receivers[0], 2e6,
                                  monitor=monitor)
        sim.run(until_ns=seconds(10))
        goodput = monitor.goodputs_bps(seconds(10))[sender.flow]
        # Payload goodput is wire rate minus header overhead.
        assert goodput == pytest.approx(2e6 * 1448 / 1500, rel=0.02)

    def test_udp_ignores_congestion(self):
        """A blind flow keeps sending into a dead link."""
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(
                                      limit_packets=2),
                                  sim=sim, tx_jitter_ns=0)
        sender = connect_udp_flow(dumbbell.senders[0],
                                  dumbbell.receivers[0], 20e6)
        sim.run(until_ns=seconds(2))
        # Offered 20 Mbps into a 10 Mbps link: half is lost, the
        # sender does not slow down.
        assert sender.sent_bytes * 8 / 2 == pytest.approx(20e6,
                                                          rel=0.05)

    def test_stop(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(
                                      limit_packets=10),
                                  sim=sim, tx_jitter_ns=0)
        sender = connect_udp_flow(dumbbell.senders[0],
                                  dumbbell.receivers[0], 2e6)
        sim.run(until_ns=seconds(1))
        sender.stop()
        sent = sender.sent_packets
        sim.run(until_ns=seconds(2))
        assert sender.sent_packets == sent

    def test_invalid_parameters(self):
        sim = Simulator()
        dumbbell = build_dumbbell([seconds(0.02)], 10e6,
                                  lambda spec: DropTailQueue(),
                                  sim=sim)
        with pytest.raises(ValueError):
            UdpSender(dumbbell.senders[0], FlowId(0, 1, 1, 2,
                                                  "udp"), 0)

    def test_cebinae_caps_blind_udp(self):
        """The paper's section 4 note: a blind UDP flow is delayed and
        dropped by the Cebinae router, releasing headroom for
        responsive flows."""
        from repro.core.control_plane import cebinae_factory
        params = CebinaeParams(dt_ns=60 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                               tau=0.05, delta_port=0.10,
                               delta_flow=0.05, use_exact_cache=True,
                               min_bottom_rate_fraction=0.02)
        sim = Simulator()
        dumbbell = build_dumbbell(
            [seconds(0.03)] * 2, 10e6,
            cebinae_factory(params=params, buffer_mtus=40), sim=sim)
        monitor = FlowMonitor(sim)
        udp = connect_udp_flow(dumbbell.senders[0],
                               dumbbell.receivers[0], 9.5e6,
                               monitor=monitor)
        tcp = connect_flow(dumbbell.senders[1], dumbbell.receivers[1],
                           "newreno", monitor=monitor, src_port=10_001)
        sim.run(until_ns=seconds(30))
        goodputs = monitor.goodputs_bps(seconds(30))
        udp_rate = goodputs[udp.flow]
        tcp_rate = goodputs[tcp.flow_id]
        # The UDP flow offered 95%; Cebinae delays and drops it well
        # below that.  Note the paper's caveat (section 4): a blind
        # flow still wastes bandwidth upstream, and full protection
        # needs admission control — Cebinae only guarantees the
        # responsive flow is not starved of the released headroom.
        assert udp_rate < 0.80 * 10e6
        assert tcp_rate > 0.02 * 10e6


def _saturate_perflow(two_rates=(70_000, 25_000)):
    """A per-flow qdisc with two ⊤ flows at different allowances."""
    sim = Simulator()
    params = CebinaeParams(dt_ns=100 * MILLISECOND,
                           vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                           use_exact_cache=True)
    qdisc = PerFlowCebinaeQueueDisc(sim, params, 8e6, 90_000)
    flow_a = FlowId(1, 2, 1, 80)
    flow_b = FlowId(1, 2, 2, 80)
    qdisc.set_membership({flow_a, flow_b})
    qdisc.set_saturated(True, top_share=0.5, bottom_share=0.5)
    for queue_index in (0, 1):
        qdisc.flow_rates[queue_index] = {flow_a: two_rates[0],
                                         flow_b: two_rates[1]}
        qdisc.lbf.rates[queue_index][FlowGroup.BOTTOM] = 900_000
    return sim, qdisc, flow_a, flow_b


def packet(flow, size=1500):
    return Packet(flow=flow, size_bytes=size)


class TestPerFlowQueueDisc:
    def test_individual_allowances(self):
        sim, qdisc, flow_a, flow_b = _saturate_perflow()
        a_head = 0
        while True:
            before = qdisc.lbf_delays
            if not qdisc.enqueue(packet(flow_a)):
                break
            if qdisc.lbf_delays > before:
                break
            a_head += 1
        b_head = 0
        while True:
            before = qdisc.lbf_delays
            if not qdisc.enqueue(packet(flow_b)):
                break
            if qdisc.lbf_delays > before:
                break
            b_head += 1
        # 7 kB vs 2.5 kB per round: ~4 packets vs ~1.
        assert a_head > b_head

    def test_bottom_traffic_unaffected(self):
        sim, qdisc, flow_a, flow_b = _saturate_perflow()
        other = FlowId(9, 9, 9, 9)
        accepted = sum(1 for _ in range(30)
                       if qdisc.enqueue(packet(other)))
        assert accepted == 30

    def test_rotation_decays_per_flow_buckets(self):
        sim, qdisc, flow_a, flow_b = _saturate_perflow()
        for _ in range(10):
            qdisc.enqueue(packet(flow_a))
        level = qdisc.flow_bytes[flow_a]
        qdisc.rotate()
        assert qdisc.flow_bytes[flow_a] == pytest.approx(
            max(level - 7000, 0))

    def test_flow_rate_change_guard(self):
        sim, qdisc, flow_a, flow_b = _saturate_perflow()
        with pytest.raises(ValueError):
            qdisc.set_flow_rates(qdisc.lbf.headq, {})


class TestPerFlowEndToEnd:
    def test_two_unequal_aggressors_equalised(self):
        """Per-flow tracking's advantage: two ⊤ flows with unequal
        rates are each squeezed toward fairness individually."""
        agents = []
        sim = Simulator()
        factory = perflow_cebinae_factory(
            params=CebinaeParams(dt_ns=80 * MILLISECOND,
                                 vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                                 tau=0.06, delta_port=0.12,
                                 delta_flow=0.5,
                                 use_exact_cache=True,
                                 min_bottom_rate_fraction=0.02),
            buffer_mtus=40, agents=agents)
        dumbbell = build_dumbbell([seconds(0.02), seconds(0.04),
                                   seconds(0.04)], 15e6, factory,
                                  sim=sim)
        monitor = FlowMonitor(sim)
        flows = [connect_flow(dumbbell.senders[i],
                              dumbbell.receivers[i], cca,
                              monitor=monitor, src_port=10_000 + i)
                 for i, cca in enumerate(["cubic", "newreno",
                                          "vegas"])]
        sim.run(until_ns=seconds(40))
        goodputs = [monitor.goodputs_bps(seconds(40))[f.flow_id]
                    for f in flows]
        assert isinstance(dumbbell.bottleneck.queue,
                          PerFlowCebinaeQueueDisc)
        assert isinstance(agents[0], PerFlowCebinaeControlPlane)
        # No starvation and reasonable overall fairness.
        total = sum(goodputs)
        assert total > 0.6 * 15e6
        assert min(goodputs) > 0.05 * total


class TestAdaptiveTau:
    def make_agent(self):
        sim = Simulator()
        params = CebinaeParams(dt_ns=50 * MILLISECOND,
                               vdt_ns=MILLISECOND, l_ns=MILLISECOND,
                               tau=0.04, use_exact_cache=True)
        qdisc = CebinaeQueueDisc(sim, params, 8e6, 45_000)
        agent = CebinaeControlPlane(sim, qdisc, record_history=True)
        return sim, qdisc, agent

    def test_requires_history(self):
        sim, qdisc, _ = self.make_agent()
        silent = CebinaeControlPlane(sim, qdisc, record_history=False)
        with pytest.raises(ValueError):
            AdaptiveTauController(sim, silent)

    def test_oscillation_damps_tau(self):
        sim, qdisc, agent = self.make_agent()
        controller = AdaptiveTauController(
            sim, agent, AdaptiveTauConfig(window_recomputes=4))

        # Alternate saturated/idle windows: heavy flapping.
        def feed():
            window = int(sim.now_ns // (100 * MILLISECOND))
            if window % 2 == 0:
                qdisc.on_transmit(Packet(flow=FlowId(1, 2, 1, 80),
                                         size_bytes=1500))
                qdisc.port_tx_bytes += 50_000 - 1500
            sim.schedule(25 * MILLISECOND, feed)

        feed()
        sim.run(until_ns=4 * SECOND)
        assert controller.tau < 0.04
        assert any(reason == "oscillation"
                   for _, _, reason in controller.adjustments)

    def test_stagnation_raises_tau(self):
        sim, qdisc, agent = self.make_agent()
        controller = AdaptiveTauController(
            sim, agent, AdaptiveTauConfig(window_recomputes=4))

        # Constant saturation with one dominant flow (jumbo packets
        # stand in for a window's worth of traffic).
        def feed():
            qdisc.on_transmit(Packet(flow=FlowId(1, 2, 1, 80),
                                     size_bytes=48_000))
            qdisc.on_transmit(Packet(flow=FlowId(1, 2, 2, 80),
                                     size_bytes=2_000))
            sim.schedule(50 * MILLISECOND, feed)

        feed()
        sim.run(until_ns=4 * SECOND)
        assert controller.tau > 0.04
        assert any(reason == "stagnation"
                   for _, _, reason in controller.adjustments)

    def test_tau_respects_bounds(self):
        sim, qdisc, agent = self.make_agent()
        config = AdaptiveTauConfig(min_tau=0.02, max_tau=0.05,
                                   window_recomputes=2)
        controller = AdaptiveTauController(sim, agent, config)
        for _ in range(50):
            controller._set_tau(controller.tau * 2, "test")
        assert controller.tau <= 0.05
        for _ in range(50):
            controller._set_tau(controller.tau / 2, "test")
        assert controller.tau >= 0.02

    def test_factory_wires_controller(self):
        from repro.netsim.topology import PortSpec
        sim = Simulator()
        controllers = []
        factory = adaptive_cebinae_factory(buffer_mtus=40,
                                           controllers=controllers)
        qdisc = factory(PortSpec(sim=sim, rate_bps=8e6, delay_ns=0,
                                 name="p"))
        assert isinstance(qdisc, CebinaeQueueDisc)
        assert len(controllers) == 1
