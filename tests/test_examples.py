"""Smoke tests: every example script runs end to end (shortened)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, patches, monkeypatch, capsys):
    """Execute an example with its duration constants shrunk."""
    path = EXAMPLES_DIR / name
    source = path.read_text()
    for old, new in patches.items():
        assert old in source, f"{name}: expected {old!r}"
        source = source.replace(old, new)
    namespace = {"__name__": "__main__"}
    code = compile(source, str(path), "exec")
    exec(code, namespace)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart.py",
                          {"DURATION_S = 40.0": "DURATION_S = 4.0"},
                          monkeypatch, capsys)
        assert "FIFO drop-tail" in out and "Cebinae" in out
        assert "JFI" in out

    def test_vegas_starvation(self, monkeypatch, capsys):
        out = run_example(
            "vegas_starvation.py",
            {"DURATION_S = 60.0": "DURATION_S = 3.0",
             "BOTTLENECK_BPS = 50e6": "BOTTLENECK_BPS = 15e6",
             "BUFFER_MTUS = 425": "BUFFER_MTUS = 120"},
            monkeypatch, capsys)
        assert "16x Vegas" in out

    def test_bbr_aggression(self, monkeypatch, capsys):
        out = run_example("bbr_aggression.py",
                          {"DURATION_S = 40.0": "DURATION_S = 4.0"},
                          monkeypatch, capsys)
        assert "BBR" in out and "fair share" in out

    def test_multi_bottleneck(self, monkeypatch, capsys):
        out = run_example(
            "multi_bottleneck.py",
            {"duration_s=40.0": "duration_s=4.0"},
            monkeypatch, capsys)
        assert "normalised JFI" in out
        assert "ideal" in out

    def test_heavy_hitter_detection(self, monkeypatch, capsys):
        out = run_example(
            "heavy_hitter_detection.py",
            {"trials=3": "trials=1",
             "trace_duration_s=0.3": "trace_duration_s=0.05",
             "flows_per_minute=400_000": "flows_per_minute=100_000"},
            monkeypatch, capsys)
        assert "FPR" in out and "FNR" in out

    def test_extensions_demo(self, monkeypatch, capsys):
        out = run_example("extensions_demo.py",
                          {"DURATION_S = 40.0": "DURATION_S = 4.0"},
                          monkeypatch, capsys)
        assert "per-flow" in out and "adaptive" in out
