"""Tests for the experiment harness: specs, scaling policy, runner."""

import pytest

from repro.core.params import CebinaeParams
from repro.experiments.runner import (Discipline, queue_factory_for,
                                      run_comparison, run_scenario)
from repro.experiments.scenarios import (MIN_SEGMENTS_PER_RTT,
                                         ScalePolicy, ScenarioSpec)
from repro.experiments.table2 import TABLE2_ROWS


class TestScenarioSpec:
    def test_flow_expansion_groupwise_rtts(self):
        spec = ScenarioSpec(name="t", rate_bps=1e8, rtts_ms=(20, 40),
                            buffer_mtus=100,
                            cca_mix=(("newreno", 2), ("cubic", 1)))
        plans = spec.flow_plans()
        assert [plan.cca for plan in plans] == ["newreno", "newreno",
                                                "cubic"]
        assert [plan.rtt_s for plan in plans] == [0.02, 0.02, 0.04]

    def test_single_rtt_applies_to_all_groups(self):
        spec = ScenarioSpec(name="t", rate_bps=1e8, rtts_ms=(50,),
                            buffer_mtus=100,
                            cca_mix=(("vegas", 1), ("bbr", 1)))
        assert [plan.rtt_s for plan in spec.flow_plans()] == [.05, .05]

    def test_mismatched_rtts_rejected(self):
        # Rejected at construction (not first use) since the suite-spec
        # layer made specs validate their fields up front.
        with pytest.raises(ValueError, match="cannot map onto"):
            ScenarioSpec(name="t", rate_bps=1e8, rtts_ms=(1, 2, 3),
                         buffer_mtus=100,
                         cca_mix=(("vegas", 1), ("bbr", 1)))

    def test_start_times_per_flow(self):
        spec = ScenarioSpec(name="t", rate_bps=1e8, rtts_ms=(50,),
                            buffer_mtus=100,
                            cca_mix=(("vegas", 2), ("cubic", 1)),
                            start_times_s=(0.0, 0.0, 5.0))
        assert [plan.start_time_s for plan in spec.flow_plans()] == \
            [0.0, 0.0, 5.0]


class TestScalePolicy:
    def test_small_mix_not_scaled(self):
        policy = ScalePolicy(max_flows=40)
        mix, factor = policy.scale_mix((("newreno", 16), ("cubic", 1)))
        assert mix == (("newreno", 16), ("cubic", 1))
        assert factor == 1.0

    def test_large_mix_scaled_preserving_minority(self):
        policy = ScalePolicy(max_flows=40)
        mix, factor = policy.scale_mix((("vegas", 1024), ("cubic", 2)))
        counts = dict(mix)
        assert counts["cubic"] >= 1
        assert sum(counts.values()) <= 45
        assert factor > 10

    def test_tau_scales_with_rate_and_caps(self):
        policy = ScalePolicy()
        assert policy.scaled_threshold(0.01, 4.0, 0.10) == \
            pytest.approx(0.04)
        assert policy.scaled_threshold(0.01, 40.0, 0.10) == 0.10
        assert policy.scaled_threshold(0.01, 0.5, 0.10) == 0.01

    def test_sim_rate_gives_viable_fair_share(self):
        policy = ScalePolicy(target_rate_bps=25e6, max_rate_bps=60e6)
        spec = ScenarioSpec(name="t", rate_bps=1e9, rtts_ms=(50,),
                            buffer_mtus=1000, cca_mix=(("newreno", 30),))
        rate = policy.sim_rate(spec, 30)
        per_flow = rate / 30
        min_rate = MIN_SEGMENTS_PER_RTT * 1448 * 8 / 0.05
        assert per_flow >= min_rate * 0.99 or rate == 60e6

    def test_apply_produces_valid_cebinae_params(self):
        policy = ScalePolicy()
        for row in TABLE2_ROWS:
            scaled = policy.apply(row.spec)
            buffer_bytes = scaled.spec.buffer_mtus * 1500
            scaled.cebinae.validate_for_link(scaled.spec.rate_bps,
                                             buffer_bytes)

    def test_apply_preserves_duration_override(self):
        policy = ScalePolicy()
        scaled = policy.apply(TABLE2_ROWS[0].spec, duration_s=5.0)
        assert scaled.spec.duration_s == 5.0

    def test_recompute_window_covers_rtt(self):
        policy = ScalePolicy()
        spec = ScenarioSpec(name="t", rate_bps=1e8, rtts_ms=(400,),
                            buffer_mtus=100, cca_mix=(("newreno", 2),))
        scaled = policy.apply(spec)
        assert scaled.cebinae.recompute_interval_ns >= 400 * 1_000_000


class TestTable2Rows:
    def test_row_count_matches_paper(self):
        assert len(TABLE2_ROWS) == 25

    def test_rates_cover_all_classes(self):
        rates = {row.spec.rate_bps for row in TABLE2_ROWS}
        assert rates == {100e6, 1000e6, 10000e6}

    def test_paper_numbers_are_sane(self):
        for row in TABLE2_ROWS:
            for numbers in (row.fifo, row.fq, row.cebinae):
                assert 0 < numbers.jfi <= 1
                assert 0 < numbers.goodput_mbps <= \
                    numbers.throughput_mbps

    def test_all_ccas_known(self):
        from repro.tcp.flows import CCA_REGISTRY
        for row in TABLE2_ROWS:
            for cca, _ in row.spec.cca_mix:
                assert cca in CCA_REGISTRY


class TestRunner:
    @pytest.fixture(scope="class")
    def tiny_scaled(self):
        policy = ScalePolicy(target_rate_bps=10e6, max_rate_bps=10e6)
        spec = ScenarioSpec(name="tiny", rate_bps=100e6,
                            rtts_ms=(20, 30), buffer_mtus=100,
                            cca_mix=(("newreno", 1), ("newreno", 1)),
                            duration_s=5.0)
        return policy.apply(spec)

    def test_fifo_run_produces_metrics(self, tiny_scaled):
        result = run_scenario(tiny_scaled, Discipline.FIFO)
        assert len(result.goodputs_bps) == 2
        assert result.total_goodput_bps > 0.5 * 10e6
        assert 0 < result.jfi <= 1
        assert result.throughput_bps >= result.total_goodput_bps

    def test_series_collection(self, tiny_scaled):
        result = run_scenario(tiny_scaled, Discipline.FIFO,
                              collect_series=True)
        assert len(result.goodput_series_bps) == 2
        assert len(result.goodput_series_bps[0]) == 5

    def test_cebinae_run_records_history(self, tiny_scaled):
        result = run_scenario(tiny_scaled, Discipline.CEBINAE,
                              record_history=True)
        assert result.cp_history is not None
        assert len(result.cp_history) > 0

    def test_comparison_runs_all_disciplines(self, tiny_scaled):
        results = run_comparison(tiny_scaled)
        assert set(results) == {Discipline.FIFO, Discipline.FQ,
                                Discipline.CEBINAE}

    def test_factory_types(self, tiny_scaled):
        from repro.core.queue_disc import CebinaeQueueDisc
        from repro.netsim.fq_codel import FqCoDelQueue
        from repro.netsim.queues import DropTailQueue
        from repro.netsim.topology import PortSpec
        from repro.netsim.engine import Simulator
        spec = PortSpec(sim=Simulator(),
                        rate_bps=tiny_scaled.spec.rate_bps,
                        delay_ns=0, name="p")
        assert isinstance(queue_factory_for(Discipline.FIFO,
                                            tiny_scaled)(spec),
                          DropTailQueue)
        assert isinstance(queue_factory_for(Discipline.FQ,
                                            tiny_scaled)(spec),
                          FqCoDelQueue)
        assert isinstance(queue_factory_for(Discipline.CEBINAE,
                                            tiny_scaled)(spec),
                          CebinaeQueueDisc)
