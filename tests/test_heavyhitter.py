"""Tests for the passive flow cache, trace generator, and FPR/FNR
evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.heavyhitter.evaluation import evaluate_detection
from repro.heavyhitter.hashpipe import (CebinaeFlowCache, ExactFlowCache,
                                        select_bottlenecked, stage_hash)
from repro.heavyhitter.traces import SyntheticTrace


class TestStageHash:
    def test_deterministic(self):
        assert stage_hash(("a", 1), 7) == stage_hash(("a", 1), 7)

    def test_salt_changes_hash(self):
        key = ("flow", 42)
        assert stage_hash(key, 1) != stage_hash(key, 2)


class TestCacheCounting:
    def test_single_flow_exact(self):
        cache = CebinaeFlowCache(stages=2, slots_per_stage=16)
        cache.update("f1", 1000)
        cache.update("f1", 500)
        assert cache.lookup("f1") == 1500

    def test_lookup_untracked_is_zero(self):
        cache = CebinaeFlowCache()
        assert cache.lookup("nope") == 0

    def test_never_overcounts(self):
        """Counts are at most the true bytes (no collision pollution) —
        the 'never make unfairness worse' invariant."""
        cache = CebinaeFlowCache(stages=1, slots_per_stage=2)
        truth = {}
        for index in range(50):
            key = f"flow{index % 10}"
            cache.update(key, 100)
            truth[key] = truth.get(key, 0) + 100
        for key, counted in cache.snapshot().items():
            assert counted <= truth[key]

    def test_full_stages_spill_to_next(self):
        cache = CebinaeFlowCache(stages=2, slots_per_stage=1)
        # With one slot per stage, at most two flows can be tracked.
        keys = ["a", "b", "c", "d"]
        tracked = sum(1 for key in keys if cache.update(key, 100))
        assert tracked == 2
        assert cache.uncounted_packets == 2
        assert cache.uncounted_bytes == 200

    def test_poll_and_reset_returns_and_clears(self):
        cache = CebinaeFlowCache(stages=2, slots_per_stage=16)
        cache.update("f1", 1000)
        cache.update("f2", 250)
        snapshot = cache.poll_and_reset()
        assert snapshot == {"f1": 1000, "f2": 250}
        assert cache.occupancy == 0
        assert cache.lookup("f1") == 0

    def test_passive_reclaim_after_reset(self):
        """After a reset, a previously crowded-out flow can claim its
        slot again — the passive-management property."""
        cache = CebinaeFlowCache(stages=1, slots_per_stage=1)
        assert cache.update("a", 100)
        assert not cache.update("b", 100)
        cache.poll_and_reset()
        assert cache.update("b", 100)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CebinaeFlowCache(stages=0)
        with pytest.raises(ValueError):
            CebinaeFlowCache(slots_per_stage=0)

    @given(st.lists(st.tuples(st.integers(0, 30),
                              st.integers(64, 1500)),
                    min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_counts_never_exceed_truth(self, updates):
        cache = CebinaeFlowCache(stages=2, slots_per_stage=8)
        truth = {}
        for key, size in updates:
            cache.update(key, size)
            truth[key] = truth.get(key, 0) + size
        for key, counted in cache.snapshot().items():
            assert counted <= truth[key]


class TestExactCache:
    def test_counts_everything(self):
        cache = ExactFlowCache()
        for index in range(100):
            assert cache.update(index, 10)
        assert cache.occupancy == 100
        assert cache.uncounted_packets == 0


class TestSelectBottlenecked:
    def test_empty_input(self):
        top, total = select_bottlenecked({}, 0.01)
        assert top == set() and total == 0

    def test_single_max(self):
        top, total = select_bottlenecked(
            {"a": 1000, "b": 500, "c": 100}, 0.01)
        assert top == {"a"}
        assert total == 1000

    def test_delta_f_groups_near_max(self):
        top, total = select_bottlenecked(
            {"a": 1000, "b": 995, "c": 500}, 0.01)
        assert top == {"a", "b"}
        assert total == 1995

    def test_delta_f_one_selects_all(self):
        counts = {"a": 1000, "b": 1, "c": 500}
        top, total = select_bottlenecked(counts, 1.0)
        assert top == set(counts)
        assert total == 1501

    def test_all_zero_counts(self):
        top, total = select_bottlenecked({"a": 0, "b": 0}, 0.01)
        assert top == set()


class TestSyntheticTrace:
    def test_deterministic_given_seed(self):
        a = list(SyntheticTrace(duration_s=0.01, flows_per_minute=6000,
                                seed=3).packets())
        b = list(SyntheticTrace(duration_s=0.01, flows_per_minute=6000,
                                seed=3).packets())
        assert a == b

    def test_different_seeds_differ(self):
        a = list(SyntheticTrace(duration_s=0.01, flows_per_minute=6000,
                                seed=3).packets())
        b = list(SyntheticTrace(duration_s=0.01, flows_per_minute=6000,
                                seed=4).packets())
        assert a != b

    def test_packets_in_time_order(self):
        trace = SyntheticTrace(duration_s=0.02, flows_per_minute=60_000,
                               seed=1)
        times = [packet.time_ns for packet in trace.packets()]
        assert times == sorted(times)
        assert times[-1] < 0.02 * 1e9

    def test_flow_population_independent_of_short_durations(self):
        """Flows/min sets the *population*; a shorter trace just sees
        fewer of each flow's packets, not fewer flows (otherwise the
        detection experiments would be trivially uncontended)."""
        short = SyntheticTrace(duration_s=0.1, flows_per_minute=60_000)
        longer = SyntheticTrace(duration_s=30, flows_per_minute=60_000)
        assert short.num_flows == longer.num_flows == 60_000

    def test_flow_count_scales_beyond_a_minute(self):
        one = SyntheticTrace(duration_s=60, flows_per_minute=6000)
        two = SyntheticTrace(duration_s=120, flows_per_minute=6000)
        assert two.num_flows == 2 * one.num_flows

    def test_rates_are_heavy_tailed(self):
        trace = SyntheticTrace(duration_s=0.5,
                               flows_per_minute=120_000, seed=1)
        rates = sorted(trace.flow_rates_bps, reverse=True)
        top_share = sum(rates[:len(rates) // 100 or 1]) / sum(rates)
        assert top_share > 0.1  # Top 1% of flows carry >10% of load.

    def test_packet_sizes_bounded(self):
        trace = SyntheticTrace(duration_s=0.01,
                               flows_per_minute=60_000, seed=2)
        for packet in trace.packets():
            assert 64 <= packet.size_bytes <= 1500

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SyntheticTrace(duration_s=0)


class TestDetectionEvaluation:
    def test_large_cache_has_low_error(self):
        result = evaluate_detection(stages=4, slots_per_stage=4096,
                                    round_interval_ms=50, trials=2,
                                    trace_duration_s=0.1,
                                    flows_per_minute=120_000)
        assert result.false_positive_rate <= 0.01
        assert result.false_negative_rate <= 0.3

    def test_tiny_cache_has_higher_fnr(self):
        small = evaluate_detection(stages=1, slots_per_stage=32,
                                   round_interval_ms=50, trials=2,
                                   trace_duration_s=0.1,
                                   flows_per_minute=120_000)
        big = evaluate_detection(stages=4, slots_per_stage=4096,
                                 round_interval_ms=50, trials=2,
                                 trace_duration_s=0.1,
                                 flows_per_minute=120_000)
        assert small.false_negative_rate >= big.false_negative_rate

    def test_rates_are_probabilities(self):
        result = evaluate_detection(stages=2, slots_per_stage=128,
                                    round_interval_ms=20, trials=1,
                                    trace_duration_s=0.05,
                                    flows_per_minute=120_000)
        assert 0.0 <= result.false_positive_rate <= 1.0
        assert 0.0 <= result.false_negative_rate <= 1.0
        assert result.intervals > 0
