"""Tests for report formatting, the CLI, and the scalability helper."""

import pytest

from repro.experiments import cli
from repro.experiments.report import format_table, mbps
from repro.experiments.scalability import (ScalabilityPoint,
                                           format_points, run_point)
from repro.heavyhitter.evaluation import DetectionResult
from repro.experiments.report import figure13_report


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "long_header"],
                             [["xx", 1], ["y", 22222]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # All rows padded to consistent columns.
        assert lines[2].index("1") == lines[0].index("long_header")

    def test_empty_rows(self):
        table = format_table(["h"], [])
        assert "h" in table

    def test_mbps_formatting(self):
        assert mbps(25_000_000) == "25.00"


class TestFigure13Report:
    def test_renders_rates(self):
        result = DetectionResult(stages=2, slots_per_stage=2048,
                                 round_interval_ms=100.0,
                                 true_positives=90,
                                 false_positives=1,
                                 false_negatives=10,
                                 intervals=10, candidate_flows=5000)
        text = figure13_report([result])
        assert "2048" in text
        assert "100" in text


class TestScalabilityHelper:
    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            run_point("magic", 2, 20.0, duration_s=0.5)

    def test_format_points(self):
        points = [ScalabilityPoint(mechanism="afq", num_flows=4,
                                   rtt_ms=20.0, jfi=0.9,
                                   goodput_bps=1e7, horizon_drops=3)]
        text = format_points(points)
        assert "afq" in text and "0.900" in text


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["nonsense"])

    def test_table3_runs_instantly(self, capsys):
        assert cli.main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "PHV=937b" in out
        assert "PHV=1042b" in out

    def test_run_experiment_rejects_unknown(self):
        with pytest.raises(ValueError):
            cli.run_experiment("not_a_thing")

    def test_quick_figure13(self, capsys):
        # The fastest simulation-backed experiment; exercises the full
        # CLI path.
        text = cli.run_experiment("figure13", quick=True)
        assert "FPR" in text and "FNR" in text

    def test_table2_row_selection(self, capsys):
        from repro.experiments.cli import EXPERIMENTS
        assert "table2" in EXPERIMENTS
        # Row selection resolves 1-based indexes; invalid rows raise.
        with pytest.raises(IndexError):
            cli.run_experiment("table2", quick=True, rows=[99])
