"""The repro.obs contract: tracing observes, never perturbs.

Covers the trace bus lifecycle, record schema validation, the metrics
registry round-trip, sink output, the off-path byte-identity guarantee
for ``ScenarioResult`` JSON, trace determinism across runs, the
control-plane timeline's every-round coverage, and the PR 5 satellite
fixes (LinkMonitor horizon, TimeSeries edge bins, profiling schema
round-trip, HashPipe trace hooks).
"""

import json

import pytest

from repro.core.control_plane import CebinaeParams
from repro.experiments.report import control_timeline_report
from repro.experiments.runner import Discipline, run_scenario
from repro.experiments.scenarios import ScalePolicy, ScenarioSpec
from repro.heavyhitter.hashpipe import CebinaeFlowCache, ExactFlowCache
from repro.netsim.engine import SECOND, Simulator
from repro.netsim.profiling import (SCHEMA_VERSION, ProfileReport,
                                    load_bench_json, write_bench_json)
from repro.netsim.tracing import FlowMonitor, LinkMonitor, TimeSeries
from repro.netsim.packet import FlowId
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics
from repro.obs.events import (TOPICS, ControlRound, PacketTx, QueueDrop,
                              SchemaError, TcpStateEvent, canonical_dict,
                              sorted_flow_strings, validate_record)
from repro.obs.sinks import (ControlTimelineSink, JsonlTraceSink,
                             MemorySink, PacketLogSink, encode_record)

TINY_POLICY = ScalePolicy(target_rate_bps=5e6, max_rate_bps=5e6)


def tiny_scaled(name="obs", duration_s=1.5):
    spec = ScenarioSpec(name=name, rate_bps=100e6, rtts_ms=(20, 30),
                        buffer_mtus=60,
                        cca_mix=(("newreno", 1), ("newreno", 1)),
                        duration_s=duration_s)
    return TINY_POLICY.apply(spec)


def result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True,
                      separators=(",", ":"))


@pytest.fixture(autouse=True)
def _no_leaked_instrumentation():
    """Every test starts and ends with tracing and metrics off."""
    obs_bus.uninstall()
    obs_metrics.disable()
    yield
    obs_bus.uninstall()
    obs_metrics.disable()


class TestBusLifecycle:
    def test_no_bus_means_no_emitter(self):
        assert obs_bus.current() is None
        assert obs_bus.emitter_for("packet") is None

    def test_unsubscribed_topic_has_no_emitter(self):
        bus = obs_bus.TraceBus()
        bus.subscribe("packet", MemorySink())
        with obs_bus.tracing(bus):
            assert obs_bus.emitter_for("packet") is not None
            assert obs_bus.emitter_for("tcp") is None
        assert obs_bus.current() is None

    def test_emitter_counts_and_fans_out(self):
        bus = obs_bus.TraceBus()
        first, second = MemorySink(), MemorySink()
        bus.subscribe("queue", first)
        bus.subscribe(("queue", "lbf"), second)
        emit = bus.emitter("queue")
        record = QueueDrop(time_ns=5, port="p0", reason="tail",
                           flow="f", size_bytes=1500)
        emit(record)
        assert first.records == [record]
        assert second.records == [record]
        assert bus.counts == {"queue": 1}
        assert bus.topics() == ["queue", "lbf"]

    def test_unknown_topic_rejected(self):
        bus = obs_bus.TraceBus()
        with pytest.raises(ValueError, match="unknown trace topic"):
            bus.subscribe("packets", MemorySink())
        with pytest.raises(ValueError, match="unknown trace topic"):
            bus.emitter("nope")

    def test_clock_binding(self):
        bus = obs_bus.TraceBus()
        assert bus.now_ns() == 0
        sim = Simulator()
        sim.schedule(7, lambda: None)
        sim.run()
        bus.set_clock(sim)
        assert bus.now_ns() == sim.now_ns

    def test_close_closes_each_sink_once(self):
        bus = obs_bus.TraceBus()
        sink = MemorySink()
        bus.subscribe(("packet", "queue"), sink)
        bus.close()
        assert sink.closed


class TestRecords:
    def test_records_are_frozen(self):
        record = PacketTx(time_ns=1, port="p", flow="f")
        with pytest.raises(Exception):
            record.time_ns = 2

    def test_to_dict_tags_and_lists(self):
        record = ControlRound(time_ns=3, port="p", round_index=1,
                              top_flows=("a", "b"))
        data = record.to_dict()
        assert data["topic"] == "control"
        assert data["type"] == "ControlRound"
        assert data["top_flows"] == ["a", "b"]

    def test_sorted_flow_strings(self):
        flows = [FlowId(src=2, dst=1, src_port=9, dst_port=80,
                        protocol="tcp"),
                 FlowId(src=1, dst=2, src_port=8, dst_port=80,
                        protocol="tcp")]
        rendered = sorted_flow_strings(flows)
        assert rendered == tuple(sorted(str(f) for f in flows))

    def test_validate_record_round_trip(self):
        for record in (PacketTx(time_ns=0, port="p", flow="f"),
                       QueueDrop(time_ns=1, port="p", flow="f"),
                       ControlRound(time_ns=2, port="p"),
                       TcpStateEvent(time_ns=3, flow="f")):
            data = json.loads(encode_record(record))
            assert validate_record(data) is type(record)

    def test_validate_record_errors(self):
        good = json.loads(encode_record(PacketTx(time_ns=0, port="p")))
        with pytest.raises(SchemaError, match="unknown record type"):
            validate_record({**good, "type": "Bogus"})
        with pytest.raises(SchemaError, match="topic"):
            validate_record({**good, "topic": "queue"})
        missing = dict(good)
        del missing["seq"]
        with pytest.raises(SchemaError, match="missing field"):
            validate_record(missing)
        with pytest.raises(SchemaError, match="is not"):
            validate_record({**good, "size_bytes": "big"})
        with pytest.raises(SchemaError, match="bool is not int"):
            validate_record({**good, "seq": True})
        with pytest.raises(SchemaError, match="unexpected fields"):
            validate_record({**good, "extra": 1})


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("drops", port="p0").inc(3)
        registry.counter("drops", port="p0").inc()
        registry.gauge("util").set(0.5)
        hist = registry.histogram("sizes", bounds=(10.0, 100.0))
        hist.observe(10.0)   # boundary lands in its own bucket
        hist.observe(11.0)
        hist.observe(1000.0)  # overflow
        assert registry.counter("drops", port="p0").value == 4
        assert registry.gauge("util").value == 0.5
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            obs_metrics.Counter().inc(-1)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            obs_metrics.Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            obs_metrics.Histogram(bounds=(1.0, 1.0))

    def test_snapshot_round_trip(self, tmp_path):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("jfi", scenario="s").set(0.9)
        registry.histogram("sizes", bounds=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == \
            obs_metrics.METRICS_SCHEMA_VERSION
        assert obs_metrics.load_snapshot(snapshot).snapshot() == snapshot
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        assert obs_metrics.load_json(str(path)).snapshot() == snapshot

    def test_load_snapshot_rejects_bad_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            obs_metrics.load_snapshot({"schema_version": 99})

    def test_engine_records_run(self):
        registry = obs_metrics.enable()
        try:
            sim = Simulator()
            sim.schedule(10, lambda: None)
            sim.run()
        finally:
            obs_metrics.disable()
        assert registry.counter("sim_runs_total").value == 1
        assert registry.counter("sim_events_total").value >= 1

    def test_absorb_profile(self):
        report = ProfileReport(events=10, wall_s=0.5, sim_s=2.0,
                               runs=1, component_events={"Link": 10})
        registry = obs_metrics.MetricsRegistry()
        registry.absorb_profile(report)
        assert registry.counter("profile_events_total").value == 10
        assert registry.counter("profile_component_events_total",
                                component="Link").value == 10


class TestScenarioByteIdentity:
    def test_tracing_off_vs_on_result_identical(self):
        scaled = tiny_scaled()
        plain = result_json(run_scenario(scaled, Discipline.CEBINAE,
                                         collect_series=True))
        bus = obs_bus.TraceBus()
        sink = MemorySink()
        bus.subscribe(TOPICS, sink)
        with obs_bus.tracing(bus):
            traced = result_json(run_scenario(scaled, Discipline.CEBINAE,
                                              collect_series=True))
        assert traced == plain
        assert sink.records, "tracing on but nothing emitted"

    def test_trace_stream_deterministic(self):
        scaled = tiny_scaled()
        streams = []
        for _ in range(2):
            bus = obs_bus.TraceBus()
            sink = MemorySink()
            bus.subscribe(TOPICS, sink)
            with obs_bus.tracing(bus):
                run_scenario(scaled, Discipline.CEBINAE)
            streams.append([encode_record(r) for r in sink.records])
        # Spans carry the schema's one sanctioned wall-clock field
        # (wall_s); canonical_dict strips it for byte comparison.
        def canon(lines):
            return [json.dumps(canonical_dict(json.loads(line)),
                               sort_keys=True, separators=(",", ":"))
                    for line in lines]
        assert canon(streams[0]) == canon(streams[1])
        for line in streams[0]:
            validate_record(json.loads(line))

    def test_metrics_do_not_perturb_result(self):
        scaled = tiny_scaled()
        plain = result_json(run_scenario(scaled, Discipline.CEBINAE))
        registry = obs_metrics.enable()
        try:
            metered = result_json(run_scenario(scaled,
                                               Discipline.CEBINAE))
        finally:
            obs_metrics.disable()
        assert metered == plain
        rows = registry.snapshot()["gauges"]
        assert any(row["name"] == "scenario_jain_index" for row in rows)


class TestControlTimeline:
    def run_traced(self, duration_s=1.5):
        scaled = tiny_scaled(duration_s=duration_s)
        bus = obs_bus.TraceBus()
        timeline = ControlTimelineSink()
        bus.subscribe("control", timeline)
        with obs_bus.tracing(bus):
            result = run_scenario(scaled, Discipline.CEBINAE,
                                  collect_series=True)
        return scaled, result, timeline

    def test_every_round_recorded(self):
        scaled, result, timeline = self.run_traced()
        rounds = timeline.rounds
        assert rounds, "no control rounds traced"
        # One record per dT rotation, contiguously indexed from 1; the
        # final rotation may land exactly at the horizon, so allow the
        # count to be one short of duration/dT.
        expected = int(scaled.spec.duration_s * SECOND
                       / scaled.cebinae.dt_ns)
        assert len(rounds) in (expected - 1, expected)
        assert [r.round_index for r in rounds] == \
            list(range(1, len(rounds) + 1))
        assert all(r.kind in ("config", "fail_open", "missed")
                   for r in rounds)

    def test_report_renders_next_to_jfi(self, tmp_path):
        _, result, timeline = self.run_traced()
        text = control_timeline_report(timeline.rounds,
                                       jfi_series=result.jfi_series())
        assert "Control-plane timeline" in text
        assert "JFI" in text
        assert len(text.splitlines()) == len(timeline.rounds) + 3
        assert timeline.format_text().startswith(
            "Control-plane timeline")
        path = tmp_path / "timeline.jsonl"
        timeline.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(timeline.rounds)
        for line in lines:
            assert validate_record(json.loads(line)) is ControlRound


class TestSinks:
    def test_jsonl_sink_writes_and_refuses_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.accept(PacketTx(time_ns=1, port="p", flow="f"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.accept(PacketTx(time_ns=2, port="p", flow="f"))
        [line] = path.read_text().splitlines()
        assert validate_record(json.loads(line)) is PacketTx

    def test_packet_log_sink_per_port(self, tmp_path):
        sink = PacketLogSink(str(tmp_path))
        sink.accept(PacketTx(time_ns=1_500_000_000, port="a->b",
                             flow="f0", ptype="data", size_bytes=1500,
                             seq=7, ack=0, ecn="NOT_ECT"))
        sink.accept(PacketTx(time_ns=2, port="b->a", flow="f1",
                             ptype="ack", size_bytes=64))
        sink.accept(QueueDrop(time_ns=3, port="a->b"))  # ignored
        sink.close()
        log_a = (tmp_path / "pkts_a-_b.log").read_text()
        assert log_a == ("1.500000000 f0 data seq=7 ack=0 "
                         "len=1500 ecn=NOT_ECT\n")
        assert (tmp_path / "pkts_b-_a.log").exists()


class TestHashPipeTraceHook:
    def test_cebinae_cache_reports_outcomes(self):
        cache = CebinaeFlowCache(stages=1, slots_per_stage=1)
        seen = []
        cache.trace = lambda *args: seen.append(args)
        cache.update("a", 100)
        cache.update("a", 50)
        cache.update("b", 10)  # collides or inserts; never silent
        kinds = [entry[0] for entry in seen]
        assert kinds[0] == "insert"
        assert kinds[1] == "hit"
        assert kinds[2] in ("insert", "hit", "uncounted")
        assert len(seen) == 3

    def test_exact_cache_reports_outcomes(self):
        cache = ExactFlowCache()
        seen = []
        cache.trace = lambda *args: seen.append(args)
        assert cache.update("a", 100)
        assert cache.update("a", 50)
        assert [entry[0] for entry in seen] == ["insert", "hit"]
        # And the traceless fast path still counts.
        plain = ExactFlowCache()
        assert plain.update("a", 1)


class TestLinkMonitorHorizon:
    class _FakeLink:
        def __init__(self):
            self.tx_bytes = 0

    def test_monitor_stops_at_horizon(self):
        sim = Simulator()
        link = self._FakeLink()
        monitor = LinkMonitor(sim, [link], bin_width_ns=SECOND,
                              horizon_ns=3 * SECOND)
        link.tx_bytes = 100
        sim.run()  # drains: the monitor must not reschedule forever
        assert sim.now_ns == 3 * SECOND
        assert monitor.series[link].total == 100

    def test_unbounded_monitor_needs_run_until(self):
        sim = Simulator()
        monitor = LinkMonitor(sim, [self._FakeLink()],
                              bin_width_ns=SECOND)
        sim.run(until_ns=2 * SECOND)
        assert sim.now_ns == 2 * SECOND
        monitor.stop()
        sim.run()  # now drains: the pending sample was cancelled
        assert monitor._pending is None

    def test_stop_is_idempotent(self):
        sim = Simulator()
        monitor = LinkMonitor(sim, [], horizon_ns=0)
        monitor.stop()
        monitor.stop()

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            LinkMonitor(Simulator(), [], horizon_ns=-1)


class TestTimeSeriesEdgeBins:
    def test_dense_zero_and_negative_until(self):
        series = TimeSeries(bin_width_ns=10)
        series.add(5, 1.0)
        assert series.dense(0) == []
        assert series.dense(-10) == []

    def test_bin_boundary_timestamps(self):
        series = TimeSeries(bin_width_ns=10)
        series.add(9, 1.0)   # last tick of bin 0
        series.add(10, 2.0)  # first tick of bin 1
        assert series.bin_value(0) == 1.0
        assert series.bin_value(1) == 2.0
        # until_ns on a boundary excludes the bin that starts there...
        assert series.dense(10) == [1.0]
        # ...and one tick past it includes it.
        assert series.dense(11) == [1.0, 2.0]

    def test_bin_value_of_empty_bin(self):
        series = TimeSeries(bin_width_ns=10)
        assert series.bin_value(3) == 0.0
        assert series.total == 0.0


class TestLbfSnapshot:
    def test_snapshot_is_json_ready_and_deterministic(self):
        from repro.core.lbf import FlowGroup, LeakyBucketFilter
        lbf = LeakyBucketFilter(CebinaeParams(), capacity_bps=8e6)
        lbf.bytes[FlowGroup.TOP] = 42.0
        state = lbf.snapshot()
        assert state["headq"] == 0
        assert state["rotations"] == 0
        assert state["bytes"] == {"top": 42.0, "bottom": 0.0}
        assert len(state["rates_bytes_per_sec"]) == 2
        assert state["rates_bytes_per_sec"][0]["top"] == 1e6
        # JSON-ready and byte-stable under canonical encoding.
        assert json.dumps(state, sort_keys=True) == \
            json.dumps(lbf.snapshot(), sort_keys=True)


class TestFlowMonitorUnregistered:
    def test_unregistered_flow_yields_empty_series(self):
        monitor = FlowMonitor(Simulator())
        ghost = FlowId(src=1, dst=2, src_port=1, dst_port=2,
                       protocol="tcp")
        assert monitor.goodput_series_bps(ghost, 5 * SECOND) == []
        assert monitor.goodputs_bps(SECOND) == {}


class TestProfilingSchema:
    def test_to_dict_carries_schema_version(self):
        report = ProfileReport(events=1, wall_s=0.1, sim_s=1.0, runs=1,
                               component_events={"Link": 1})
        assert report.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_from_dict_round_trip(self):
        report = ProfileReport(events=5, wall_s=0.25, sim_s=2.0,
                               runs=2, component_events={"Link": 3,
                                                         "TcpSender": 2})
        rebuilt = ProfileReport.from_dict(report.to_dict())
        assert rebuilt == report

    def test_from_dict_rejects_bad_version(self):
        report = ProfileReport(events=1, wall_s=0.1, sim_s=1.0, runs=1,
                               component_events={})
        data = report.to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            ProfileReport.from_dict(data)

    def test_load_bench_json_round_trip(self, tmp_path):
        report = ProfileReport(events=7, wall_s=0.5, sim_s=3.0, runs=1,
                               component_events={"Link": 7})
        path = tmp_path / "BENCH_profile.json"
        write_bench_json(str(path), name="smoke", report=report)
        loaded = load_bench_json(str(path))
        assert loaded == {"smoke": report}
