"""Cross-worker aggregation: snapshot merging and the fleet view."""

import json
from types import SimpleNamespace

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.aggregate import (AGGREGATE_SCHEMA_VERSION, fleet_view,
                                 merge_snapshots, read_worker_snapshots)
from repro.obs.metrics import MetricsRegistry


class TestMergeSnapshots:
    def test_empty_input_is_empty_registry(self):
        merged = merge_snapshots([])
        assert merged.snapshot() == MetricsRegistry().snapshot()

    def test_empty_registry_snapshot_merges(self):
        merged = merge_snapshots([MetricsRegistry().snapshot()])
        assert merged.snapshot() == MetricsRegistry().snapshot()

    def test_single_worker_identity(self):
        registry = MetricsRegistry()
        registry.counter("sweep_tasks_completed_total",
                         worker="w0").inc(3)
        registry.gauge("sweep_inflight_shards", worker="w0").set(1)
        registry.histogram("sweep_task_wall_seconds",
                           bounds=[1.0, 2.0], worker="w0").observe(1.5)
        snapshot = registry.snapshot()
        assert merge_snapshots([snapshot]).snapshot() == snapshot

    def test_counters_sum_and_disjoint_labels_survive(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("sweep_tasks_completed_total", worker="w0").inc(2)
        one.counter("sim_runs_total").inc(5)
        two.counter("sweep_tasks_completed_total", worker="w1").inc(3)
        two.counter("sim_runs_total").inc(7)
        merged = merge_snapshots([one.snapshot(), two.snapshot()])
        assert merged.counter("sim_runs_total").value == 12
        assert merged.counter("sweep_tasks_completed_total",
                              worker="w0").value == 2
        assert merged.counter("sweep_tasks_completed_total",
                              worker="w1").value == 3

    def test_gauges_merge_by_max_order_independent(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.gauge("sweep_quarantine_depth").set(4)
        two.gauge("sweep_quarantine_depth").set(1)
        forward = merge_snapshots([one.snapshot(), two.snapshot()])
        backward = merge_snapshots([two.snapshot(), one.snapshot()])
        assert forward.gauge("sweep_quarantine_depth").value == 4
        assert forward.snapshot() == backward.snapshot()

    def test_histograms_merge_over_union_of_bounds(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        coarse = one.histogram("sweep_task_wall_seconds",
                               bounds=[1.0, 2.0])
        coarse.observe(0.5)
        coarse.observe(1.5)
        fine = two.histogram("sweep_task_wall_seconds",
                             bounds=[2.0, 4.0])
        fine.observe(3.0)
        fine.observe(10.0)    # overflow
        merged = merge_snapshots([one.snapshot(), two.snapshot()])
        rows = merged.snapshot()["histograms"]
        assert len(rows) == 1
        row = rows[0]
        assert row["bounds"] == [1.0, 2.0, 4.0]
        # Each source bucket lands at its own bound's union position;
        # overflow stays overflow; sum/count are exact.
        assert row["counts"] == [1, 1, 1, 1]
        assert row["sum"] == pytest.approx(15.0)
        assert row["count"] == 4

    def test_foreign_schema_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            merge_snapshots([{"schema_version": 99}])


class TestReadWorkerSnapshots:
    def test_missing_directory_is_empty(self, tmp_path):
        snapshots, errors = read_worker_snapshots(tmp_path / "nope")
        assert snapshots == {} and errors == []

    def test_reads_skips_and_reports(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("sim_runs_total").inc(1)
        registry.write_json(str(tmp_path / "w0.json"))
        (tmp_path / "torn.json").write_text('{"schema_version": 1, "co')
        (tmp_path / "foreign.json").write_text(
            json.dumps({"schema_version": 99}))
        # In-progress atomic writes never match the *.json glob.
        (tmp_path / "w1.json.tmp-123").write_text("{}")
        snapshots, errors = read_worker_snapshots(tmp_path)
        assert list(snapshots) == ["w0"]
        assert sorted(errors) == ["foreign.json", "torn.json"]


def fake_sweep(tmp_path, counts, lease_info, fingerprints):
    (tmp_path / "metrics").mkdir(exist_ok=True)
    (tmp_path / "cache").mkdir(exist_ok=True)
    tasks = [SimpleNamespace(index=i, label=f"t{i}", fingerprint=f)
             for i, f in enumerate(fingerprints)]
    status = {"name": "fake", "total": len(tasks),
              "counts": counts, "lease_info": lease_info}
    return SimpleNamespace(
        metrics_dir=tmp_path / "metrics",
        cache_dir=tmp_path / "cache",
        status=lambda clock=None: dict(status),
        load_manifest=lambda: SimpleNamespace(tasks=tasks))


class TestFleetView:
    def test_aggregates_workers_leases_and_integrity(self, tmp_path):
        sweep = fake_sweep(
            tmp_path,
            counts={"done": 2, "pending": 1, "leased": 1,
                    "quarantined": 0},
            lease_info=[
                {"key": "shard-00002", "worker": "w0", "age_s": 1.5,
                 "expiry_s": 300.0, "expired": False},
                {"key": "shard-00003", "worker": "w1", "age_s": 400.0,
                 "expiry_s": 300.0, "expired": True},
            ],
            fingerprints=["f0", "f1", "f2", "f3"])
        for name in ("f0", "f1", "orphan"):
            (tmp_path / "cache" / f"{name}.json").write_text("{}")
        registry = MetricsRegistry()
        registry.counter("sweep_tasks_completed_total",
                         worker="w0").inc(2)
        histogram = registry.histogram("sweep_task_wall_seconds",
                                       worker="w0")
        histogram.observe(2.0)
        histogram.observe(4.0)
        registry.gauge("sweep_last_task_index", worker="w0").set(1)
        registry.write_json(str(tmp_path / "metrics" / "w0.json"),
                            captured_at=12.5)

        doc = fleet_view(sweep)
        assert doc["aggregate_version"] == AGGREGATE_SCHEMA_VERSION
        assert doc["sweep"] == "fake" and doc["total"] == 4
        assert doc["totals"]["tasks_completed"] == 2
        # Both done results were computed here: no cache warm start.
        assert doc["cache_hit_ratio"] == 0.0
        # 2 remaining tasks / 1 live worker at 3 s/task mean.
        assert doc["eta_s"] == pytest.approx(6.0)
        assert doc["integrity"] == {"missing_results": 2,
                                    "orphan_results": 1}
        assert doc["snapshot_errors"] == []
        (row,) = doc["workers"]
        assert row["worker"] == "w0"
        assert row["completed"] == 2
        assert row["busy_s"] == pytest.approx(6.0)
        assert row["tasks_per_min"] == pytest.approx(20.0)
        assert row["last_task"] == {"index": 1, "label": "t1",
                                    "fingerprint": "f1"}
        assert row["captured_at"] == 12.5
        assert row["shards"] == ["shard-00002"]
        assert row["heartbeat_age_s"] == 1.5
        assert row["lease_expired"] is False

    def test_finished_sweep_is_byte_stable(self, tmp_path):
        sweep = fake_sweep(
            tmp_path,
            counts={"done": 1, "pending": 0, "leased": 0,
                    "quarantined": 0},
            lease_info=[], fingerprints=["f0"])
        (tmp_path / "cache" / "f0.json").write_text("{}")
        registry = MetricsRegistry()
        registry.counter("sweep_tasks_completed_total",
                         worker="w0").inc(1)
        registry.write_json(str(tmp_path / "metrics" / "w0.json"))
        first = json.dumps(fleet_view(sweep), sort_keys=True)
        second = json.dumps(fleet_view(sweep), sort_keys=True)
        assert first == second
        doc = json.loads(first)
        assert doc["eta_s"] == 0.0
        assert doc["integrity"] == {"missing_results": 0,
                                    "orphan_results": 0}

    def test_no_snapshots_yet(self, tmp_path):
        sweep = fake_sweep(
            tmp_path,
            counts={"done": 0, "pending": 2, "leased": 0,
                    "quarantined": 0},
            lease_info=[], fingerprints=["f0", "f1"])
        doc = fleet_view(sweep)
        assert doc["workers"] == []
        assert doc["cache_hit_ratio"] is None
        assert doc["eta_s"] is None    # no throughput sample yet
        assert doc["totals"]["tasks_completed"] == 0

    def test_cache_hits_counted(self, tmp_path):
        # 3 done, only 1 computed by a live worker: 2 warm-start hits.
        sweep = fake_sweep(
            tmp_path,
            counts={"done": 3, "pending": 0, "leased": 0,
                    "quarantined": 0},
            lease_info=[], fingerprints=["f0", "f1", "f2"])
        for name in ("f0", "f1", "f2"):
            (tmp_path / "cache" / f"{name}.json").write_text("{}")
        registry = MetricsRegistry()
        registry.counter("sweep_tasks_completed_total",
                         worker="w0").inc(1)
        registry.write_json(str(tmp_path / "metrics" / "w0.json"))
        doc = fleet_view(sweep)
        assert doc["cache_hit_ratio"] == pytest.approx(2 / 3, abs=1e-4)


class TestRecordSweepGauges:
    def test_gauges_set_not_summed(self):
        registry = MetricsRegistry()
        obs_metrics.record_sweep(registry, "inflight_shards",
                                 worker="w0", amount=1)
        obs_metrics.record_sweep(registry, "inflight_shards",
                                 worker="w0", amount=0)
        assert registry.gauge("sweep_inflight_shards",
                              worker="w0").value == 0

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep event"):
            obs_metrics.record_sweep(MetricsRegistry(), "nonsense")
